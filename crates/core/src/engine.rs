//! The gate-application engine: Hybrid vs Composition settings.

use autoq_circuit::{Circuit, Gate};
use autoq_treeaut::TreeAutomaton;

use crate::formula::update_formula;
use crate::{composition, permutation, StateSet};

/// Which gate encoding the engine prefers (the two settings evaluated in the
/// paper's Section 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Use the permutation-based encoding whenever the gate supports it and
    /// fall back on the composition-based encoding otherwise (the paper's
    /// `Hybrid` setting — consistently the faster one in Table 2).
    #[default]
    Hybrid,
    /// Use the composition-based encoding for every gate (the paper's
    /// `Composition` setting).
    Composition,
}

/// When the automaton reduction (trimming + successor merging) runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReductionPolicy {
    /// Reduce after every gate (the paper reduces after the cheap
    /// permutation-style gates; reducing after every gate keeps automata
    /// small at a modest cost and is the default).
    #[default]
    AfterEachGate,
    /// Never reduce (used by the ablation benchmarks).
    Never,
}

/// A configured gate-application engine.
///
/// # Examples
///
/// ```
/// use autoq_circuit::{Circuit, Gate};
/// use autoq_core::{Engine, StateSet};
///
/// let circuit = Circuit::from_gates(2, [Gate::H(0), Gate::Cnot { control: 0, target: 1 }]).unwrap();
/// let input = StateSet::basis_state(2, 0);
/// let hybrid = Engine::hybrid().apply_circuit(&input, &circuit);
/// let composition = Engine::composition().apply_circuit(&input, &circuit);
/// // Both engines compute the same set of output states.
/// assert_eq!(hybrid.states(8), composition.states(8));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Engine {
    /// The preferred gate encoding.
    pub kind: EngineKind,
    /// When to reduce intermediate automata.
    pub reduction: ReductionPolicy,
}

impl Engine {
    /// The `Hybrid` engine with the default reduction policy.
    pub fn hybrid() -> Self {
        Engine {
            kind: EngineKind::Hybrid,
            reduction: ReductionPolicy::AfterEachGate,
        }
    }

    /// The `Composition` engine with the default reduction policy.
    pub fn composition() -> Self {
        Engine {
            kind: EngineKind::Composition,
            reduction: ReductionPolicy::AfterEachGate,
        }
    }

    /// Returns a copy with the given reduction policy.
    pub fn with_reduction(self, reduction: ReductionPolicy) -> Self {
        Engine { reduction, ..self }
    }

    /// Applies a single gate to a set of states.
    ///
    /// # Panics
    ///
    /// Panics if the gate refers to qubits outside the set.
    pub fn apply_gate(&self, set: &StateSet, gate: &Gate) -> StateSet {
        for q in gate.qubits() {
            assert!(q < set.num_qubits(), "gate qubit {q} out of range");
        }
        let mut automaton = set.automaton().clone();
        for primitive in gate.decompose() {
            automaton = self.apply_primitive(&automaton, &primitive);
        }
        set.with_automaton(automaton)
    }

    /// Applies a primitive (already decomposed) gate to a raw automaton.
    fn apply_primitive(&self, automaton: &TreeAutomaton, gate: &Gate) -> TreeAutomaton {
        let use_permutation = match self.kind {
            EngineKind::Hybrid => permutation::supports(gate),
            EngineKind::Composition => false,
        };
        let result = if use_permutation {
            permutation::apply(automaton, gate)
        } else {
            let formula =
                update_formula(gate).expect("primitive gates always have an update formula");
            composition::apply_formula(automaton, &formula)
        };
        match self.reduction {
            ReductionPolicy::AfterEachGate => result.reduce(),
            ReductionPolicy::Never => result,
        }
    }

    /// Applies every gate of a circuit in order, returning the set of output
    /// states (the automaton `A` of the paper's workflow).
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the state set.
    pub fn apply_circuit(&self, set: &StateSet, circuit: &Circuit) -> StateSet {
        assert!(
            circuit.num_qubits() <= set.num_qubits(),
            "circuit has more qubits than the state set"
        );
        let mut current = set.clone();
        for gate in circuit.gates() {
            current = self.apply_gate(&current, gate);
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoq_amplitude::Algebraic;
    use autoq_simulator::DenseState;
    use autoq_treeaut::Tree;

    /// Applies a circuit with both engines and with the dense simulator on a
    /// basis-state input and checks that all three agree exactly.
    fn check_against_simulator(circuit: &Circuit, basis: u64) {
        let expected = DenseState::run(circuit, basis).to_amplitude_map();
        let input = StateSet::basis_state(circuit.num_qubits(), basis);
        for engine in [Engine::hybrid(), Engine::composition()] {
            let output = engine.apply_circuit(&input, circuit);
            let states = output.states(4);
            assert_eq!(
                states.len(),
                1,
                "singleton input must stay a singleton ({engine:?})"
            );
            assert_eq!(
                states[0], expected,
                "engine {engine:?} disagrees with the simulator"
            );
        }
    }

    #[test]
    fn epr_circuit_constructs_the_bell_state() {
        let circuit = Circuit::from_gates(
            2,
            [
                Gate::H(0),
                Gate::Cnot {
                    control: 0,
                    target: 1,
                },
            ],
        )
        .unwrap();
        check_against_simulator(&circuit, 0b00);
        check_against_simulator(&circuit, 0b10);
    }

    #[test]
    fn every_single_qubit_gate_matches_the_simulator() {
        let gates = [
            Gate::X(1),
            Gate::Y(1),
            Gate::Z(1),
            Gate::H(1),
            Gate::S(1),
            Gate::Sdg(1),
            Gate::T(1),
            Gate::Tdg(1),
            Gate::RxPi2(1),
            Gate::RyPi2(1),
        ];
        for gate in gates {
            for basis in 0..4u64 {
                let circuit = Circuit::from_gates(2, [Gate::H(0), Gate::H(1), gate]).unwrap();
                check_against_simulator(&circuit, basis);
            }
        }
    }

    #[test]
    fn every_multi_qubit_gate_matches_the_simulator() {
        let gates = [
            Gate::Cnot {
                control: 0,
                target: 2,
            },
            Gate::Cnot {
                control: 2,
                target: 0,
            },
            Gate::Cz {
                control: 1,
                target: 2,
            },
            Gate::Cz {
                control: 2,
                target: 1,
            },
            Gate::Swap(0, 2),
            Gate::Toffoli {
                controls: [0, 1],
                target: 2,
            },
            Gate::Toffoli {
                controls: [2, 1],
                target: 0,
            },
            Gate::Fredkin {
                control: 0,
                targets: [1, 2],
            },
        ];
        for gate in gates {
            for basis in 0..8u64 {
                let circuit = Circuit::from_gates(3, [Gate::H(0), Gate::T(1), gate]).unwrap();
                check_against_simulator(&circuit, basis);
            }
        }
    }

    #[test]
    fn hybrid_and_composition_agree_on_superposition_circuits() {
        let circuit = Circuit::from_gates(
            3,
            [
                Gate::H(0),
                Gate::RyPi2(1),
                Gate::Cnot {
                    control: 1,
                    target: 0,
                },
                Gate::T(2),
                Gate::RxPi2(2),
                Gate::Toffoli {
                    controls: [0, 2],
                    target: 1,
                },
                Gate::H(2),
            ],
        )
        .unwrap();
        check_against_simulator(&circuit, 0);
        check_against_simulator(&circuit, 0b101);
    }

    #[test]
    fn engine_handles_sets_of_inputs() {
        // Apply X(1) to the set of all 2-qubit basis states: the set is unchanged.
        let all = StateSet::all_basis_states(2);
        let result = Engine::hybrid().apply_gate(&all, &Gate::X(1));
        assert_eq!(result.states(8).len(), 4);
        for b in 0..4u64 {
            assert!(result.contains_basis_state(b));
        }
        // Apply H(0) to {|00⟩, |10⟩}: produces the two superposition states.
        let two = StateSet::basis_state(2, 0).union(&StateSet::basis_state(2, 0b10));
        let result = Engine::composition().apply_gate(&two, &Gate::H(0));
        let states = result.states(8);
        assert_eq!(states.len(), 2);
        assert!(result.contains_state_fn(|b| match b {
            0b00 | 0b10 => Algebraic::one_over_sqrt2(),
            _ => Algebraic::zero(),
        }));
        assert!(result.contains_state_fn(|b| match b {
            0b00 => Algebraic::one_over_sqrt2(),
            0b10 => -&Algebraic::one_over_sqrt2(),
            _ => Algebraic::zero(),
        }));
    }

    #[test]
    fn reduction_policy_controls_automaton_growth() {
        let circuit = Circuit::from_gates(
            2,
            [
                Gate::H(0),
                Gate::T(0),
                Gate::H(1),
                Gate::Cnot {
                    control: 0,
                    target: 1,
                },
                Gate::H(0),
            ],
        )
        .unwrap();
        let input = StateSet::basis_state(2, 0);
        let reduced = Engine::hybrid().apply_circuit(&input, &circuit);
        let unreduced = Engine::hybrid()
            .with_reduction(ReductionPolicy::Never)
            .apply_circuit(&input, &circuit);
        assert!(reduced.state_count() <= unreduced.state_count());
        // Both represent the same single state.
        assert_eq!(reduced.states(4), unreduced.reduced().states(4));
    }

    #[test]
    fn bell_state_output_accepts_expected_tree() {
        let circuit = Circuit::from_gates(
            2,
            [
                Gate::H(0),
                Gate::Cnot {
                    control: 0,
                    target: 1,
                },
            ],
        )
        .unwrap();
        let output = Engine::hybrid().apply_circuit(&StateSet::basis_state(2, 0), &circuit);
        let bell = Tree::from_fn(2, |b| match b {
            0b00 | 0b11 => Algebraic::one_over_sqrt2(),
            _ => Algebraic::zero(),
        });
        assert!(output.automaton().accepts(&bell));
    }
}
