//! The gate-application engine: Hybrid vs Composition settings.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use autoq_circuit::schedule::interference_schedule;
use autoq_circuit::{Circuit, Gate};
use autoq_treeaut::TreeAutomaton;

use crate::composition::CompositionOptions;
use crate::formula::update_formula;
use crate::interrupt::{Interrupt, Interrupted, StopReason};
use crate::{composition, permutation, StateSet};

/// A shared, clonable cancellation flag checked by the engine **between
/// gates** (and by [`BugHunter`](crate::BugHunter) between hunt iterations).
///
/// The portfolio hunter ([`crate::pool::HuntPool`]) raises the flag as soon
/// as one worker's witness is simulator-confirmed, so the other workers
/// abandon their runs at the next gate boundary instead of finishing a
/// now-pointless analysis.  Cancellation is cooperative and monotone: once
/// raised, the flag stays raised.
///
/// # Examples
///
/// ```
/// use autoq_core::CancelFlag;
///
/// let flag = CancelFlag::new();
/// let observer = flag.clone(); // shares the same flag
/// assert!(!observer.is_cancelled());
/// flag.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, unraised flag.
    pub fn new() -> Self {
        CancelFlag::default()
    }

    /// Raises the flag.  All clones observe the cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Returns `true` once any clone has raised the flag.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Which gate encoding the engine prefers (the two settings evaluated in the
/// paper's Section 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Use the permutation-based encoding whenever the gate supports it and
    /// fall back on the composition-based encoding otherwise (the paper's
    /// `Hybrid` setting — consistently the faster one in Table 2).
    #[default]
    Hybrid,
    /// Use the composition-based encoding for every gate (the paper's
    /// `Composition` setting).
    Composition,
}

/// When the automaton reduction (trimming + successor merging) runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReductionPolicy {
    /// Reduce after every user-level gate (the paper reduces after the cheap
    /// permutation-style gates; reducing after every gate keeps automata
    /// small at a modest cost).  Multi-primitive gates (`SWAP`, Fredkin)
    /// reduce once per gate, not once per primitive.
    AfterEachGate,
    /// Never reduce (used by the ablation benchmarks).
    Never,
    /// Reduce after every composition-encoded gate (those genuinely grow the
    /// automaton), but after the cheap permutation-encoded gates only once
    /// the automaton has grown past `growth_factor ×` the transition count
    /// measured at the last reduction.  This matches the paper's policy of
    /// reducing only around the permutation-style constructions when
    /// worthwhile: a run of permutation gates at most doubles the automaton
    /// each time, so skipping reduction under the threshold trades a little
    /// peak size for far fewer reduction passes.
    Adaptive {
        /// Growth multiplier over the last post-reduction transition count
        /// that triggers a reduction after a permutation-encoded gate.  `2`
        /// is a good default (see the `ablation` bench); `1` reduces after
        /// any permutation gate that grew the automaton at all (still
        /// skipping the no-growth ones, e.g. `X`, which
        /// [`ReductionPolicy::AfterEachGate`] would reduce after too).
        growth_factor: u32,
    },
}

impl Default for ReductionPolicy {
    /// `Adaptive { growth_factor: 2 }` — the sweep-backed default of
    /// [`Engine::hybrid`], kept in sync so `Engine::default()` and
    /// `Engine::hybrid()` agree.
    fn default() -> Self {
        ReductionPolicy::Adaptive { growth_factor: 2 }
    }
}

/// Size statistics collected while applying gates — the peaks are what the
/// reduction policy trades off, so `table3` prints them per row to make hot
/// path regressions visible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Largest automaton state count observed after any primitive gate
    /// (before the following reduction) *or* inside a composition gate's
    /// swap ladder — with in-ladder reduction the intermediate automata can
    /// peak higher than any post-gate snapshot, so the ladder reports its
    /// own watermark.
    pub peak_states: usize,
    /// Largest automaton transition count observed after any primitive gate
    /// *or* between the swap passes of a composition gate's ladder (the
    /// same in-gate watermark as [`ApplyStats::peak_states`]).
    pub peak_transitions: usize,
    /// Number of reduction passes that actually ran.
    pub reductions: usize,
    /// Number of user-level gates applied.
    pub gates_applied: usize,
    /// Certification record of the final verdict, when a
    /// [`CertifyPolicy`](crate::CertifyPolicy) other than `Off` produced
    /// one: the verdict polarity, the digest of the `AQIC` certificate
    /// bundle and the independent checker's outcome.  `None` when
    /// certification was off or nothing was certifiable.
    pub certified: Option<crate::CertifiedVerdict>,
}

impl ApplyStats {
    fn observe(&mut self, automaton: &TreeAutomaton) {
        self.peak_states = self.peak_states.max(automaton.state_count());
        self.peak_transitions = self.peak_transitions.max(automaton.transition_count());
    }

    /// Combines the statistics of two runs (peaks max, counters summed; the
    /// later certification record wins, since the merged run has one final
    /// verdict).
    pub fn merge(&self, other: &ApplyStats) -> ApplyStats {
        ApplyStats {
            peak_states: self.peak_states.max(other.peak_states),
            peak_transitions: self.peak_transitions.max(other.peak_transitions),
            reductions: self.reductions + other.reductions,
            gates_applied: self.gates_applied + other.gates_applied,
            certified: other.certified.or(self.certified),
        }
    }
}

/// A configured gate-application engine.
///
/// # Examples
///
/// ```
/// use autoq_circuit::{Circuit, Gate};
/// use autoq_core::{Engine, StateSet};
///
/// let circuit = Circuit::from_gates(2, [Gate::H(0), Gate::Cnot { control: 0, target: 1 }]).unwrap();
/// let input = StateSet::basis_state(2, 0);
/// let hybrid = Engine::hybrid().apply_circuit(&input, &circuit);
/// let composition = Engine::composition().apply_circuit(&input, &circuit);
/// // Both engines compute the same set of output states.
/// assert_eq!(hybrid.states(8), composition.states(8));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Engine {
    /// The preferred gate encoding.
    pub kind: EngineKind,
    /// When to reduce intermediate automata.
    pub reduction: ReductionPolicy,
    /// Tuning of the composition-encoded pipeline (the fused swap ladder's
    /// in-ladder reduction factor and the term-evaluation thread budget).
    pub composition: CompositionOptions,
}

impl Engine {
    /// The `Hybrid` engine with the default reduction policy.
    ///
    /// The default is [`ReductionPolicy::Adaptive`]`{ growth_factor: 2 }`
    /// (making this identical to [`Engine::adaptive`]): the Table 2
    /// reduction-policy sweep (the `sweep.*` entries of
    /// `BENCH_reduction.json`, regenerated by `bench_reduction` as the
    /// median of interleaved runs) shows `Adaptive { growth_factor: 2 }`
    /// at-or-faster than [`ReductionPolicy::AfterEachGate`] on **every**
    /// row — including the BV family, where an earlier (pre-fused-ladder)
    /// sweep had it ~20% slower at BV16 and kept the eager default.  With
    /// the fused composition ladder doing its own in-ladder reduction, the
    /// post-`H` automata the adaptive policy leaves unreduced no longer
    /// snowball, and the saved reduction passes win on every family.
    /// Revert to `AfterEachGate` only if a future sweep shows a regressing
    /// row; callers can always pin a policy via [`Engine::with_reduction`].
    pub fn hybrid() -> Self {
        Engine {
            kind: EngineKind::Hybrid,
            reduction: ReductionPolicy::Adaptive { growth_factor: 2 },
            composition: CompositionOptions::default(),
        }
    }

    /// The `Composition` engine with the default reduction policy.
    pub fn composition() -> Self {
        Engine {
            kind: EngineKind::Composition,
            reduction: ReductionPolicy::AfterEachGate,
            composition: CompositionOptions::default(),
        }
    }

    /// The `Hybrid` engine with the adaptive reduction policy (reduce after
    /// composition gates, and after permutation gates only past 2× growth).
    pub fn adaptive() -> Self {
        Engine {
            kind: EngineKind::Hybrid,
            reduction: ReductionPolicy::Adaptive { growth_factor: 2 },
            composition: CompositionOptions::default(),
        }
    }

    /// Returns a copy with the given reduction policy.
    pub fn with_reduction(self, reduction: ReductionPolicy) -> Self {
        Engine { reduction, ..self }
    }

    /// Returns a copy with the given composition-pipeline options.
    pub fn with_composition(self, composition: CompositionOptions) -> Self {
        Engine {
            composition,
            ..self
        }
    }

    /// Returns a copy whose composition term evaluator uses at most
    /// `eval_threads` OS threads (`1` = fully sequential).
    pub fn with_eval_threads(self, eval_threads: usize) -> Self {
        Engine {
            composition: CompositionOptions {
                eval_threads: eval_threads.max(1),
                ..self.composition
            },
            ..self
        }
    }

    /// The effective composition-pipeline options under this engine's
    /// reduction policy: [`ReductionPolicy::Never`] also disables the
    /// in-ladder reduction (the ablation benchmarks measure the unreduced
    /// pipeline), every other policy keeps the configured options.
    pub fn composition_options(&self) -> CompositionOptions {
        match self.reduction {
            ReductionPolicy::Never => CompositionOptions {
                ladder_growth_factor: None,
                ..self.composition
            },
            _ => self.composition,
        }
    }

    /// Applies a single gate to a set of states.
    ///
    /// Under [`ReductionPolicy::Adaptive`] this behaves like
    /// [`ReductionPolicy::AfterEachGate`]: adaptivity needs the cross-gate
    /// growth baseline that only [`Engine::apply_circuit`] maintains — on
    /// the stateless single-gate API, a gate that exactly doubles the
    /// automaton (every controlled graft does) would otherwise never
    /// trigger the growth threshold and the automaton would double
    /// unreduced on every call.
    ///
    /// # Panics
    ///
    /// Panics if the gate refers to qubits outside the set.
    pub fn apply_gate(&self, set: &StateSet, gate: &Gate) -> StateSet {
        for q in gate.qubits() {
            assert!(q < set.num_qubits(), "gate qubit {q} out of range");
        }
        let engine = match self.reduction {
            ReductionPolicy::Adaptive { .. } => self.with_reduction(ReductionPolicy::AfterEachGate),
            _ => *self,
        };
        let mut automaton = set.automaton().clone();
        let mut baseline = automaton.transition_count();
        let mut stats = ApplyStats::default();
        engine
            .apply_gate_in_place(&mut automaton, gate, &mut baseline, &mut stats, None)
            .expect("apply_gate without an interrupt cannot stop early");
        set.with_automaton(automaton)
    }

    /// Applies one user-level gate to the working automaton: every primitive
    /// of its decomposition in place, then at most one reduction (never one
    /// per primitive — a SWAP is one gate, not three).  On `Err` the
    /// automaton is left in an unspecified partial state and must be
    /// discarded by the caller.
    fn apply_gate_in_place(
        &self,
        automaton: &mut TreeAutomaton,
        gate: &Gate,
        baseline: &mut usize,
        stats: &mut ApplyStats,
        interrupt: Option<&Interrupt>,
    ) -> Result<(), StopReason> {
        let mut used_composition = false;
        for primitive in gate.decompose() {
            used_composition |=
                self.apply_primitive_in_place(automaton, &primitive, stats, interrupt)?;
            stats.observe(automaton);
            if let Some(interrupt) = interrupt {
                interrupt.check(stats)?;
            }
        }
        stats.gates_applied += 1;
        let reduce = match self.reduction {
            ReductionPolicy::AfterEachGate => true,
            ReductionPolicy::Never => false,
            ReductionPolicy::Adaptive { growth_factor } => {
                used_composition
                    || automaton.transition_count()
                        > (growth_factor as usize).max(1) * (*baseline).max(1)
            }
        };
        if reduce {
            *automaton = automaton.reduce();
            *baseline = automaton.transition_count();
            stats.reductions += 1;
        }
        Ok(())
    }

    /// Applies a primitive (already decomposed) gate to the working
    /// automaton; returns `true` if the composition-based encoding was used.
    /// Composition gates also report the peak automaton size reached
    /// *inside* their swap ladders into `stats` — with in-ladder reduction
    /// the post-gate automaton no longer witnesses the true peak — and
    /// check the interrupt between ladder passes, so even a single
    /// blowing-up gate stops near its budget.
    fn apply_primitive_in_place(
        &self,
        automaton: &mut TreeAutomaton,
        gate: &Gate,
        stats: &mut ApplyStats,
        interrupt: Option<&Interrupt>,
    ) -> Result<bool, StopReason> {
        let use_permutation = match self.kind {
            EngineKind::Hybrid => permutation::supports(gate),
            EngineKind::Composition => false,
        };
        if use_permutation {
            permutation::apply_in_place(automaton, gate);
            Ok(false)
        } else {
            let formula =
                update_formula(gate).expect("primitive gates always have an update formula");
            let in_gate_peak = composition::apply_formula_in_place_interruptible(
                automaton,
                &formula,
                &self.composition_options(),
                interrupt,
            )?;
            stats.peak_states = stats.peak_states.max(in_gate_peak.states);
            stats.peak_transitions = stats.peak_transitions.max(in_gate_peak.transitions);
            Ok(true)
        }
    }

    /// Applies every gate of a circuit, returning the set of output states
    /// (the automaton `A` of the paper's workflow).
    ///
    /// Gates are applied in the interference-friendly commuting order of
    /// [`autoq_circuit::schedule`] rather than strict program order: only
    /// gates on disjoint qubit sets are reordered (which commutes exactly,
    /// so the output set is identical), and branching gates whose
    /// interference can collapse are scheduled before further branching —
    /// the same scheduling that keeps the sparse simulator's support small,
    /// lifted to the automata engine so intermediate automata stop blowing
    /// up on superposing circuits.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the state set.
    pub fn apply_circuit(&self, set: &StateSet, circuit: &Circuit) -> StateSet {
        self.apply_circuit_with_stats(set, circuit).0
    }

    /// Like [`Engine::apply_circuit`] but also reports peak automaton sizes
    /// and reduction counts (the `table3` per-row columns).
    pub fn apply_circuit_with_stats(
        &self,
        set: &StateSet,
        circuit: &Circuit,
    ) -> (StateSet, ApplyStats) {
        self.apply_circuit_inner(set, circuit, None, None)
            .expect("apply_circuit without an interrupt cannot stop early")
    }

    /// Like [`Engine::apply_circuit_with_stats`], but checks `cancel`
    /// between gates and returns `None` as soon as it observes the flag
    /// raised — the cooperative cancellation point used by the portfolio
    /// hunter's losing workers.  The partially applied automaton is
    /// discarded; no output set is produced for a cancelled run.
    pub fn apply_circuit_cancellable(
        &self,
        set: &StateSet,
        circuit: &Circuit,
        cancel: &CancelFlag,
    ) -> Option<(StateSet, ApplyStats)> {
        let interrupt = Interrupt::from_flag(cancel.clone());
        self.apply_circuit_inner(set, circuit, Some(&interrupt), None)
            .ok()
    }

    /// Like [`Engine::apply_circuit_cancellable`], but additionally calls
    /// `observer(applied, total)` after each applied gate — the progress
    /// hook the verification daemon uses to stream progress frames while a
    /// job runs.  The observer must be cheap; it runs on the hot path.
    pub fn apply_circuit_observed(
        &self,
        set: &StateSet,
        circuit: &Circuit,
        cancel: &CancelFlag,
        observer: &mut dyn FnMut(usize, usize),
    ) -> Option<(StateSet, ApplyStats)> {
        let interrupt = Interrupt::from_flag(cancel.clone());
        self.apply_circuit_inner(set, circuit, Some(&interrupt), Some(observer))
            .ok()
    }

    /// Like [`Engine::apply_circuit_with_stats`], but governed by an
    /// [`Interrupt`]: cancellation, the wall-clock deadline and the
    /// peak-size budgets are all checked between gates (and inside
    /// composition swap ladders), so a run that would blow up stops within
    /// one gate boundary of its limit and reports a typed [`Interrupted`]
    /// with the statistics gathered so far.
    pub fn apply_circuit_interruptible(
        &self,
        set: &StateSet,
        circuit: &Circuit,
        interrupt: &Interrupt,
    ) -> Result<(StateSet, ApplyStats), Interrupted> {
        self.apply_circuit_inner(set, circuit, Some(interrupt), None)
    }

    /// [`Engine::apply_circuit_interruptible`] with the daemon's
    /// progress-observer hook.
    pub fn apply_circuit_interruptible_observed(
        &self,
        set: &StateSet,
        circuit: &Circuit,
        interrupt: &Interrupt,
        observer: &mut dyn FnMut(usize, usize),
    ) -> Result<(StateSet, ApplyStats), Interrupted> {
        self.apply_circuit_inner(set, circuit, Some(interrupt), Some(observer))
    }

    fn apply_circuit_inner(
        &self,
        set: &StateSet,
        circuit: &Circuit,
        interrupt: Option<&Interrupt>,
        mut observer: Option<&mut dyn FnMut(usize, usize)>,
    ) -> Result<(StateSet, ApplyStats), Interrupted> {
        assert!(
            circuit.num_qubits() <= set.num_qubits(),
            "circuit has more qubits than the state set"
        );
        let gates = circuit.gates();
        let total = gates.len();
        let mut automaton = set.automaton().clone();
        let mut baseline = automaton.transition_count();
        let mut stats = ApplyStats::default();
        stats.observe(&automaton);
        for (applied, index) in interference_schedule(circuit).into_iter().enumerate() {
            if let Some(interrupt) = interrupt {
                if let Err(reason) = interrupt.check(&stats) {
                    return Err(Interrupted {
                        reason,
                        partial_stats: stats,
                    });
                }
            }
            if let Err(reason) = self.apply_gate_in_place(
                &mut automaton,
                &gates[index],
                &mut baseline,
                &mut stats,
                interrupt,
            ) {
                return Err(Interrupted {
                    reason,
                    partial_stats: stats,
                });
            }
            if let Some(observer) = observer.as_deref_mut() {
                observer(applied + 1, total);
            }
        }
        Ok((set.with_automaton(automaton), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoq_amplitude::Algebraic;
    use autoq_simulator::DenseState;
    use autoq_treeaut::Tree;

    /// Applies a circuit with both engines and with the dense simulator on a
    /// basis-state input and checks that all three agree exactly.
    fn check_against_simulator(circuit: &Circuit, basis: u128) {
        let expected = DenseState::run(circuit, basis).to_amplitude_map();
        let input = StateSet::basis_state(circuit.num_qubits(), basis);
        for engine in [Engine::hybrid(), Engine::composition()] {
            let output = engine.apply_circuit(&input, circuit);
            let states = output.states(4);
            assert_eq!(
                states.len(),
                1,
                "singleton input must stay a singleton ({engine:?})"
            );
            assert_eq!(
                states[0], expected,
                "engine {engine:?} disagrees with the simulator"
            );
        }
    }

    #[test]
    fn epr_circuit_constructs_the_bell_state() {
        let circuit = Circuit::from_gates(
            2,
            [
                Gate::H(0),
                Gate::Cnot {
                    control: 0,
                    target: 1,
                },
            ],
        )
        .unwrap();
        check_against_simulator(&circuit, 0b00);
        check_against_simulator(&circuit, 0b10);
    }

    #[test]
    fn every_single_qubit_gate_matches_the_simulator() {
        let gates = [
            Gate::X(1),
            Gate::Y(1),
            Gate::Z(1),
            Gate::H(1),
            Gate::S(1),
            Gate::Sdg(1),
            Gate::T(1),
            Gate::Tdg(1),
            Gate::RxPi2(1),
            Gate::RyPi2(1),
        ];
        for gate in gates {
            for basis in 0..4u128 {
                let circuit = Circuit::from_gates(2, [Gate::H(0), Gate::H(1), gate]).unwrap();
                check_against_simulator(&circuit, basis);
            }
        }
    }

    #[test]
    fn every_multi_qubit_gate_matches_the_simulator() {
        let gates = [
            Gate::Cnot {
                control: 0,
                target: 2,
            },
            Gate::Cnot {
                control: 2,
                target: 0,
            },
            Gate::Cz {
                control: 1,
                target: 2,
            },
            Gate::Cz {
                control: 2,
                target: 1,
            },
            Gate::Swap(0, 2),
            Gate::Toffoli {
                controls: [0, 1],
                target: 2,
            },
            Gate::Toffoli {
                controls: [2, 1],
                target: 0,
            },
            Gate::Fredkin {
                control: 0,
                targets: [1, 2],
            },
        ];
        for gate in gates {
            for basis in 0..8u128 {
                let circuit = Circuit::from_gates(3, [Gate::H(0), Gate::T(1), gate]).unwrap();
                check_against_simulator(&circuit, basis);
            }
        }
    }

    #[test]
    fn hybrid_and_composition_agree_on_superposition_circuits() {
        let circuit = Circuit::from_gates(
            3,
            [
                Gate::H(0),
                Gate::RyPi2(1),
                Gate::Cnot {
                    control: 1,
                    target: 0,
                },
                Gate::T(2),
                Gate::RxPi2(2),
                Gate::Toffoli {
                    controls: [0, 2],
                    target: 1,
                },
                Gate::H(2),
            ],
        )
        .unwrap();
        check_against_simulator(&circuit, 0);
        check_against_simulator(&circuit, 0b101);
    }

    #[test]
    fn engine_handles_sets_of_inputs() {
        // Apply X(1) to the set of all 2-qubit basis states: the set is unchanged.
        let all = StateSet::all_basis_states(2);
        let result = Engine::hybrid().apply_gate(&all, &Gate::X(1));
        assert_eq!(result.states(8).len(), 4);
        for b in 0..4u128 {
            assert!(result.contains_basis_state(b));
        }
        // Apply H(0) to {|00⟩, |10⟩}: produces the two superposition states.
        let two = StateSet::basis_state(2, 0).union(&StateSet::basis_state(2, 0b10));
        let result = Engine::composition().apply_gate(&two, &Gate::H(0));
        let states = result.states(8);
        assert_eq!(states.len(), 2);
        assert!(result.contains_state_fn(|b| match b {
            0b00 | 0b10 => Algebraic::one_over_sqrt2(),
            _ => Algebraic::zero(),
        }));
        assert!(result.contains_state_fn(|b| match b {
            0b00 => Algebraic::one_over_sqrt2(),
            0b10 => -&Algebraic::one_over_sqrt2(),
            _ => Algebraic::zero(),
        }));
    }

    #[test]
    fn reduction_policy_controls_automaton_growth() {
        let circuit = Circuit::from_gates(
            2,
            [
                Gate::H(0),
                Gate::T(0),
                Gate::H(1),
                Gate::Cnot {
                    control: 0,
                    target: 1,
                },
                Gate::H(0),
            ],
        )
        .unwrap();
        let input = StateSet::basis_state(2, 0);
        let reduced = Engine::hybrid().apply_circuit(&input, &circuit);
        let unreduced = Engine::hybrid()
            .with_reduction(ReductionPolicy::Never)
            .apply_circuit(&input, &circuit);
        assert!(reduced.state_count() <= unreduced.state_count());
        // Both represent the same single state.
        assert_eq!(reduced.states(4), unreduced.reduced().states(4));
    }

    #[test]
    fn adaptive_policy_agrees_with_after_each_gate() {
        // A mixed permutation/composition circuit: the adaptive policy may
        // skip reductions mid-run but must compute the same output set.
        let circuit = Circuit::from_gates(
            3,
            [
                Gate::H(0),
                Gate::T(1),
                Gate::Cnot {
                    control: 0,
                    target: 2,
                },
                Gate::X(1),
                Gate::Cz {
                    control: 1,
                    target: 2,
                },
                Gate::RyPi2(2),
                Gate::Toffoli {
                    controls: [0, 1],
                    target: 2,
                },
                Gate::H(1),
            ],
        )
        .unwrap();
        for basis in [0u128, 0b101] {
            let input = StateSet::basis_state(3, basis);
            let (eager, eager_stats) = Engine::hybrid().apply_circuit_with_stats(&input, &circuit);
            let (adaptive, adaptive_stats) =
                Engine::adaptive().apply_circuit_with_stats(&input, &circuit);
            assert!(
                autoq_treeaut::equivalence(eager.automaton(), adaptive.automaton()).holds(),
                "adaptive output set differs on |{basis:b}⟩"
            );
            assert!(
                adaptive_stats.reductions <= eager_stats.reductions,
                "adaptive must not reduce more often than after-each-gate"
            );
        }
    }

    #[test]
    fn adaptive_single_gate_api_keeps_automata_reduced() {
        // The stateless apply_gate API has no cross-gate growth baseline, so
        // Adaptive must fall back to reducing after each gate: a long run of
        // controlled grafts (each doubling the automaton) must not compound.
        let engine = Engine::adaptive();
        let mut set = Engine::hybrid().apply_gate(&StateSet::basis_state(3, 0), &Gate::H(0));
        for _ in 0..10 {
            set = engine.apply_gate(
                &set,
                &Gate::Cnot {
                    control: 0,
                    target: 1,
                },
            );
            assert!(
                set.transition_count() < 100,
                "automaton must stay reduced, got {} transitions",
                set.transition_count()
            );
        }
    }

    #[test]
    fn multi_primitive_gates_reduce_once_per_gate() {
        // A SWAP decomposes into three CNOTs but is one user-level gate: the
        // default policy must run exactly one reduction for it.
        let circuit = Circuit::from_gates(2, [Gate::Swap(0, 1)]).unwrap();
        let input = StateSet::basis_state(2, 0b01);
        let (output, stats) = Engine::hybrid().apply_circuit_with_stats(&input, &circuit);
        assert_eq!(stats.gates_applied, 1);
        assert_eq!(stats.reductions, 1);
        assert!(output.contains_basis_state(0b10));
        assert!(stats.peak_states >= output.state_count());
    }

    #[test]
    fn stats_report_peaks_and_merge() {
        let circuit = Circuit::from_gates(
            2,
            [
                Gate::H(0),
                Gate::Cnot {
                    control: 0,
                    target: 1,
                },
            ],
        )
        .unwrap();
        let input = StateSet::basis_state(2, 0);
        let (_, stats) = Engine::hybrid().apply_circuit_with_stats(&input, &circuit);
        assert_eq!(stats.gates_applied, 2);
        assert!(stats.peak_states > 0);
        assert!(stats.peak_transitions > 0);
        let doubled = stats.merge(&stats);
        assert_eq!(doubled.gates_applied, 4);
        assert_eq!(doubled.peak_states, stats.peak_states);
    }

    #[test]
    fn bell_state_output_accepts_expected_tree() {
        let circuit = Circuit::from_gates(
            2,
            [
                Gate::H(0),
                Gate::Cnot {
                    control: 0,
                    target: 1,
                },
            ],
        )
        .unwrap();
        let output = Engine::hybrid().apply_circuit(&StateSet::basis_state(2, 0), &circuit);
        let bell = Tree::from_fn(2, |b| match b {
            0b00 | 0b11 => Algebraic::one_over_sqrt2(),
            _ => Algebraic::zero(),
        });
        assert!(output.automaton().accepts(&bell));
    }
}
