//! The permutation-based encoding of quantum gates (Section 5).
//!
//! Gates whose matrices have exactly one non-zero entry per row (possibly
//! with a constant scaling) permute the computational basis and can be
//! applied to a tree automaton by direct transition surgery:
//!
//! * `X` swaps the children of every `x_t` transition (Theorem 5.1),
//! * `Z`, `S`, `S†`, `T`, `T†` scale the two subtrees of every `x_t` node by
//!   constants, implemented with a "primed copy" whose leaves are rescaled
//!   (Algorithm 1, Theorem 5.2),
//! * `Y` combines scaling and swapping,
//! * `CNOT`, `CZ` and Toffoli graft the transformed primed copy under the
//!   `1`-branch of the control qubit (Algorithm 2, Theorem 5.3), provided
//!   every control sits above the target in the variable order.
//!
//! Gates outside this fragment (`H`, `Rx(π/2)`, `Ry(π/2)`, or controlled
//! gates with a control *below* the target) must use the composition-based
//! encoding of [`crate::composition`].

use autoq_amplitude::Algebraic;
use autoq_circuit::Gate;
use autoq_treeaut::TreeAutomaton;

/// Returns `true` if the permutation-based encoding can apply this gate
/// (cf. the `Hybrid` setting of the paper's tool).
pub fn supports(gate: &Gate) -> bool {
    match *gate {
        Gate::X(_)
        | Gate::Y(_)
        | Gate::Z(_)
        | Gate::S(_)
        | Gate::Sdg(_)
        | Gate::T(_)
        | Gate::Tdg(_) => true,
        Gate::Cnot { control, target } => control < target,
        // CZ is symmetric in its two qubits, so it can always be oriented
        // with the control above the target.
        Gate::Cz { .. } => true,
        Gate::Toffoli { controls, target } => controls[0] < target && controls[1] < target,
        Gate::H(_) | Gate::RxPi2(_) | Gate::RyPi2(_) | Gate::Swap(..) | Gate::Fredkin { .. } => {
            false
        }
    }
}

/// Applies a gate with the permutation-based encoding.
///
/// # Panics
///
/// Panics if [`supports`] returns `false` for the gate.
pub fn apply(automaton: &TreeAutomaton, gate: &Gate) -> TreeAutomaton {
    let mut result = automaton.clone();
    apply_in_place(&mut result, gate);
    result
}

/// In-place variant of [`apply`], used on the engine's working automaton so
/// permutation gates skip the per-gate whole-automaton clone.
///
/// # Panics
///
/// Panics if [`supports`] returns `false` for the gate.
pub fn apply_in_place(automaton: &mut TreeAutomaton, gate: &Gate) {
    assert!(
        supports(gate),
        "gate {gate} is not supported by the permutation-based encoding"
    );
    match *gate {
        Gate::X(t) => swap_children_in_place(automaton, t),
        Gate::Z(t) => {
            scale_children_in_place(automaton, t, &Algebraic::one(), &(-&Algebraic::one()))
        }
        Gate::S(t) => scale_children_in_place(automaton, t, &Algebraic::one(), &Algebraic::i()),
        Gate::Sdg(t) => {
            scale_children_in_place(automaton, t, &Algebraic::one(), &Algebraic::omega_pow(6))
        }
        Gate::T(t) => scale_children_in_place(automaton, t, &Algebraic::one(), &Algebraic::omega()),
        Gate::Tdg(t) => {
            scale_children_in_place(automaton, t, &Algebraic::one(), &Algebraic::omega_pow(7))
        }
        Gate::Y(t) => {
            // Y: (v0, v1) ↦ (−ω²·v1, ω²·v0) — swap, then scale.
            swap_children_in_place(automaton, t);
            scale_children_in_place(automaton, t, &(-&Algebraic::i()), &Algebraic::i());
        }
        Gate::Cnot { control, target } => {
            controlled_graft_in_place(automaton, control, |inner| swap_children(inner, target));
        }
        Gate::Cz { control, target } => {
            let (c, t) = (control.min(target), control.max(target));
            controlled_graft_in_place(automaton, c, |inner| {
                scale_children(inner, t, &Algebraic::one(), &(-&Algebraic::one()))
            });
        }
        Gate::Toffoli { controls, target } => {
            let c_low = controls[0].min(controls[1]);
            let c_high = controls[0].max(controls[1]);
            controlled_graft_in_place(automaton, c_low, |inner| {
                controlled_graft(inner, c_high, |inner2| swap_children(inner2, target))
            });
        }
        _ => unreachable!("supports() rejected the gate"),
    }
}

/// Swaps the left and right children of every `x_t` transition
/// (the `X_t` construction of Theorem 5.1).
pub fn swap_children(automaton: &TreeAutomaton, qubit: u32) -> TreeAutomaton {
    let mut result = automaton.clone();
    swap_children_in_place(&mut result, qubit);
    result
}

/// In-place variant of [`swap_children`].
pub fn swap_children_in_place(automaton: &mut TreeAutomaton, qubit: u32) {
    for transition in automaton.internal.iter_mut() {
        if transition.symbol.var == qubit {
            std::mem::swap(&mut transition.left, &mut transition.right);
        }
    }
    automaton.invalidate_index();
}

/// Scales the `0`-subtree of every `x_t` node by `scale_left` and the
/// `1`-subtree by `scale_right` (Algorithm 1 generalised to both scalars).
pub fn scale_children(
    automaton: &TreeAutomaton,
    qubit: u32,
    scale_left: &Algebraic,
    scale_right: &Algebraic,
) -> TreeAutomaton {
    let mut result = automaton.clone();
    scale_children_in_place(&mut result, qubit, scale_left, scale_right);
    result
}

/// In-place variant of [`scale_children`].
pub fn scale_children_in_place(
    automaton: &mut TreeAutomaton,
    qubit: u32,
    scale_left: &Algebraic,
    scale_right: &Algebraic,
) {
    let one = Algebraic::one();
    if scale_left == &one && scale_right == &one {
        return;
    }
    if scale_left == scale_right {
        automaton.map_leaves_in_place(|value| value * scale_left);
        return;
    }
    // Primed copy with leaves scaled by `scale_right`.
    let primed = automaton.map_leaves(|value| value * scale_right);
    // Working automaton with leaves scaled by `scale_left`.
    automaton.map_leaves_in_place(|value| value * scale_left);
    let original_count = automaton.internal.len();
    let offset = automaton.import_disjoint(&primed);
    for transition in automaton.internal.iter_mut().take(original_count) {
        if transition.symbol.var == qubit {
            transition.right = transition.right.offset(offset);
        }
    }
    automaton.invalidate_index();
}

/// Grafts the transformed automaton under the `1`-branch of every `x_c`
/// transition (Algorithm 2): the result behaves like the original automaton
/// when the control qubit is `0` and like `inner(automaton)` when it is `1`.
///
/// Correct only when every qubit touched by `inner` lies strictly below `c`
/// in the variable order.
pub fn controlled_graft(
    automaton: &TreeAutomaton,
    control: u32,
    inner: impl Fn(&TreeAutomaton) -> TreeAutomaton,
) -> TreeAutomaton {
    let mut result = automaton.clone();
    controlled_graft_in_place(&mut result, control, inner);
    result
}

/// In-place variant of [`controlled_graft`].
pub fn controlled_graft_in_place(
    automaton: &mut TreeAutomaton,
    control: u32,
    inner: impl Fn(&TreeAutomaton) -> TreeAutomaton,
) {
    let transformed = inner(automaton);
    let original_count = automaton.internal.len();
    let offset = automaton.import_disjoint(&transformed);
    for transition in automaton.internal.iter_mut().take(original_count) {
        if transition.symbol.var == control {
            transition.right = transition.right.offset(offset);
        }
    }
    automaton.invalidate_index();
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoq_treeaut::Tree;

    fn states_of(automaton: &TreeAutomaton) -> Vec<std::collections::BTreeMap<u128, Algebraic>> {
        automaton
            .enumerate(64)
            .iter()
            .map(Tree::to_amplitude_map)
            .collect()
    }

    #[test]
    fn support_classification_matches_the_paper() {
        assert!(supports(&Gate::X(0)));
        assert!(supports(&Gate::T(5)));
        assert!(supports(&Gate::Cnot {
            control: 0,
            target: 3
        }));
        assert!(!supports(&Gate::Cnot {
            control: 3,
            target: 0
        }));
        assert!(supports(&Gate::Cz {
            control: 3,
            target: 0
        }));
        assert!(supports(&Gate::Toffoli {
            controls: [0, 1],
            target: 2
        }));
        assert!(!supports(&Gate::Toffoli {
            controls: [0, 3],
            target: 2
        }));
        assert!(!supports(&Gate::H(0)));
        assert!(!supports(&Gate::RxPi2(0)));
    }

    #[test]
    fn x_gate_swaps_subtrees() {
        let automaton = TreeAutomaton::from_tree(&Tree::basis_state(2, 0b01));
        let result = apply(&automaton, &Gate::X(0));
        assert!(result.accepts(&Tree::basis_state(2, 0b11)));
        assert!(!result.accepts(&Tree::basis_state(2, 0b01)));
        // Applying X twice is the identity.
        let twice = apply(&result, &Gate::X(0));
        assert!(twice.accepts(&Tree::basis_state(2, 0b01)));
    }

    #[test]
    fn z_gate_negates_the_one_branch() {
        let plus = Tree::from_fn(1, |_| Algebraic::one_over_sqrt2());
        let automaton = TreeAutomaton::from_tree(&plus);
        let result = apply(&automaton, &Gate::Z(0)).reduce();
        let states = states_of(&result);
        assert_eq!(states.len(), 1);
        assert_eq!(states[0][&0], Algebraic::one_over_sqrt2());
        assert_eq!(states[0][&1], -&Algebraic::one_over_sqrt2());
    }

    #[test]
    fn t_gate_applies_omega_phase() {
        let plus = Tree::from_fn(1, |_| Algebraic::one_over_sqrt2());
        let automaton = TreeAutomaton::from_tree(&plus);
        let result = apply(&automaton, &Gate::T(0)).reduce();
        let states = states_of(&result);
        assert_eq!(states[0][&1], Algebraic::one_over_sqrt2().mul_omega());
        // T · T† is the identity.
        let back = apply(&result, &Gate::Tdg(0)).reduce();
        assert!(back.accepts(&plus));
    }

    #[test]
    fn y_gate_matches_its_matrix() {
        // Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩.
        let automaton = TreeAutomaton::from_tree(&Tree::basis_state(1, 0));
        let result = apply(&automaton, &Gate::Y(0)).reduce();
        let states = states_of(&result);
        assert_eq!(states[0].get(&1), Some(&Algebraic::i()));
        assert_eq!(states[0].get(&0), None);
        let automaton = TreeAutomaton::from_tree(&Tree::basis_state(1, 1));
        let result = apply(&automaton, &Gate::Y(0)).reduce();
        let states = states_of(&result);
        assert_eq!(states[0].get(&0), Some(&(-&Algebraic::i())));
    }

    #[test]
    fn cnot_flips_target_only_when_control_is_one() {
        let automaton =
            TreeAutomaton::from_trees(2, &[Tree::basis_state(2, 0b00), Tree::basis_state(2, 0b10)]);
        let result = apply(
            &automaton,
            &Gate::Cnot {
                control: 0,
                target: 1,
            },
        )
        .reduce();
        assert!(result.accepts(&Tree::basis_state(2, 0b00)));
        assert!(result.accepts(&Tree::basis_state(2, 0b11)));
        assert!(!result.accepts(&Tree::basis_state(2, 0b10)));
        assert_eq!(result.enumerate(16).len(), 2);
    }

    #[test]
    fn cz_is_symmetric_in_its_arguments() {
        let minus_both = Tree::from_fn(2, |b| match b {
            0b11 => Algebraic::one(),
            _ => Algebraic::zero(),
        });
        let automaton = TreeAutomaton::from_tree(&minus_both);
        for gate in [
            Gate::Cz {
                control: 0,
                target: 1,
            },
            Gate::Cz {
                control: 1,
                target: 0,
            },
        ] {
            let result = apply(&automaton, &gate).reduce();
            let states = states_of(&result);
            assert_eq!(
                states[0][&0b11],
                -&Algebraic::one(),
                "wrong result for {gate}"
            );
        }
    }

    #[test]
    fn toffoli_requires_both_controls() {
        let inputs: Vec<Tree> = (0..8).map(|b| Tree::basis_state(3, b)).collect();
        let automaton = TreeAutomaton::from_trees(3, &inputs);
        let result = apply(
            &automaton,
            &Gate::Toffoli {
                controls: [0, 1],
                target: 2,
            },
        )
        .reduce();
        // The set of all basis states is closed under Toffoli.
        assert_eq!(result.enumerate(16).len(), 8);
        for b in 0..8u128 {
            assert!(result.accepts(&Tree::basis_state(3, b)));
        }
        // A single state is permuted: |110⟩ ↦ |111⟩.
        let single = TreeAutomaton::from_tree(&Tree::basis_state(3, 0b110));
        let moved = apply(
            &single,
            &Gate::Toffoli {
                controls: [0, 1],
                target: 2,
            },
        )
        .reduce();
        assert!(moved.accepts(&Tree::basis_state(3, 0b111)));
        assert_eq!(moved.enumerate(4).len(), 1);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn unsupported_gate_panics() {
        let automaton = TreeAutomaton::from_tree(&Tree::basis_state(1, 0));
        let _ = apply(&automaton, &Gate::H(0));
    }
}
