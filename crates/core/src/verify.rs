//! `{P} C {Q}` verification and circuit (non-)equivalence checking.

use autoq_circuit::Circuit;
use autoq_treeaut::{equivalence, inclusion, EquivalenceResult, InclusionResult, Tree};

use crate::{Engine, StateSet};

/// How the set of output states must relate to the post-condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SpecMode {
    /// The output set must be *equal* to the post-condition.
    #[default]
    Equality,
    /// The output set must be *included* in the post-condition.
    Inclusion,
}

/// The outcome of a verification query.
#[derive(Clone, Debug, PartialEq)]
pub enum VerificationOutcome {
    /// The triple `{P} C {Q}` holds.
    Holds,
    /// The triple is violated; the witness is a quantum state exhibiting the
    /// violation (reachable but not allowed, or allowed but not reachable).
    Violated {
        /// The witness quantum state (a full binary tree).
        witness: Tree,
        /// `true` if the witness is an output state that the post-condition
        /// forbids; `false` if the post-condition requires a state that the
        /// circuit cannot produce (only possible in [`SpecMode::Equality`]).
        reachable_but_forbidden: bool,
    },
}

impl VerificationOutcome {
    /// Returns `true` if the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, VerificationOutcome::Holds)
    }

    /// The witness state of a violation, if any.
    pub fn witness(&self) -> Option<&Tree> {
        match self {
            VerificationOutcome::Holds => None,
            VerificationOutcome::Violated { witness, .. } => Some(witness),
        }
    }
}

/// Checks the triple `{pre} circuit {post}`: runs the circuit on the set of
/// states `pre` and compares the set of output states with `post`.
///
/// This is the paper's main verification workflow (Sections 1 and 7.1); on
/// failure a witness state is returned for diagnosis, exactly as the paper's
/// tool produces one via VATA.
///
/// # Examples
///
/// ```
/// use autoq_circuit::{Circuit, Gate};
/// use autoq_core::{verify, Engine, SpecMode, StateSet};
///
/// // {|0⟩} X {|1⟩} holds; {|0⟩} X {|0⟩} is violated with witness |1⟩.
/// let x = Circuit::from_gates(1, [Gate::X(0)]).unwrap();
/// let engine = Engine::hybrid();
/// assert!(verify(&engine, &StateSet::basis_state(1, 0), &x, &StateSet::basis_state(1, 1), SpecMode::Equality).holds());
/// let bad = verify(&engine, &StateSet::basis_state(1, 0), &x, &StateSet::basis_state(1, 0), SpecMode::Equality);
/// assert!(!bad.holds());
/// ```
pub fn verify(
    engine: &Engine,
    pre: &StateSet,
    circuit: &Circuit,
    post: &StateSet,
    mode: SpecMode,
) -> VerificationOutcome {
    let output = engine.apply_circuit(pre, circuit);
    compare_with_post(&output, post, mode)
}

/// Compares an already-computed output set against the post-condition.
pub fn compare_with_post(
    output: &StateSet,
    post: &StateSet,
    mode: SpecMode,
) -> VerificationOutcome {
    match mode {
        SpecMode::Inclusion => match inclusion(output.automaton(), post.automaton()) {
            InclusionResult::Included => VerificationOutcome::Holds,
            InclusionResult::Counterexample(witness) => VerificationOutcome::Violated {
                witness,
                reachable_but_forbidden: true,
            },
        },
        SpecMode::Equality => match equivalence(output.automaton(), post.automaton()) {
            EquivalenceResult::Equivalent => VerificationOutcome::Holds,
            EquivalenceResult::OnlyInLeft(witness) => VerificationOutcome::Violated {
                witness,
                reachable_but_forbidden: true,
            },
            EquivalenceResult::OnlyInRight(witness) => VerificationOutcome::Violated {
                witness,
                reachable_but_forbidden: false,
            },
        },
    }
}

/// Like [`verify`] but checks `cancel` between gates and returns `None` as
/// soon as the flag is observed raised — the cooperative-cancellation entry
/// point used by the verification daemon when a client disconnects or
/// cancels mid-job.  The post-condition comparison itself is not
/// interrupted; the circuit application, the dominant cost, is.
pub fn verify_cancellable(
    engine: &Engine,
    pre: &StateSet,
    circuit: &Circuit,
    post: &StateSet,
    mode: SpecMode,
    cancel: &crate::CancelFlag,
) -> Option<VerificationOutcome> {
    let (output, _) = engine.apply_circuit_cancellable(pre, circuit, cancel)?;
    Some(compare_with_post(&output, post, mode))
}

/// Like [`verify_cancellable`], but also reports gate-application statistics
/// and calls `observer(applied, total)` after every applied gate — the
/// daemon's progress-streaming hook.
pub fn verify_observed(
    engine: &Engine,
    pre: &StateSet,
    circuit: &Circuit,
    post: &StateSet,
    mode: SpecMode,
    cancel: &crate::CancelFlag,
    observer: &mut dyn FnMut(usize, usize),
) -> Option<(VerificationOutcome, crate::ApplyStats)> {
    let (output, stats) = engine.apply_circuit_observed(pre, circuit, cancel, observer)?;
    Some((compare_with_post(&output, post, mode), stats))
}

/// Like [`verify`] but governed by an [`Interrupt`](crate::Interrupt):
/// cancellation, the wall-clock deadline and the peak-size budgets are
/// checked between gates, so a verification that would blow up returns a
/// typed [`Interrupted`](crate::Interrupted) (with the statistics gathered
/// so far) within one gate boundary of its limit — no hang, no OOM.  The
/// post-condition comparison itself is not interrupted; the circuit
/// application, the dominant cost, is.
pub fn verify_interruptible(
    engine: &Engine,
    pre: &StateSet,
    circuit: &Circuit,
    post: &StateSet,
    mode: SpecMode,
    interrupt: &crate::Interrupt,
) -> Result<(VerificationOutcome, crate::ApplyStats), crate::Interrupted> {
    let (output, stats) = engine.apply_circuit_interruptible(pre, circuit, interrupt)?;
    Ok((compare_with_post(&output, post, mode), stats))
}

/// [`verify_interruptible`] with the daemon's progress-observer hook.
pub fn verify_interruptible_observed(
    engine: &Engine,
    pre: &StateSet,
    circuit: &Circuit,
    post: &StateSet,
    mode: SpecMode,
    interrupt: &crate::Interrupt,
    observer: &mut dyn FnMut(usize, usize),
) -> Result<(VerificationOutcome, crate::ApplyStats), crate::Interrupted> {
    let (output, stats) =
        engine.apply_circuit_interruptible_observed(pre, circuit, interrupt, observer)?;
    Ok((compare_with_post(&output, post, mode), stats))
}

/// Runs two circuits on the same set of input states and compares the sets
/// of output states — the paper's non-equivalence check for validating
/// circuit optimisations.
///
/// A non-equivalent answer is definitive ("the circuits differ on this
/// input set"); an equivalent answer only means the two circuits agree *on
/// the given inputs*.
///
/// ```
/// use autoq_circuit::{Circuit, Gate};
/// use autoq_core::{check_circuit_equivalence, Engine, StateSet};
///
/// let c1 = Circuit::from_gates(2, [Gate::H(0), Gate::H(0)]).unwrap();
/// let identity = Circuit::new(2);
/// let inputs = StateSet::all_basis_states(2);
/// let engine = Engine::hybrid();
/// assert!(check_circuit_equivalence(&engine, &inputs, &c1, &identity).holds());
/// ```
pub fn check_circuit_equivalence(
    engine: &Engine,
    inputs: &StateSet,
    c1: &Circuit,
    c2: &Circuit,
) -> EquivalenceResult {
    check_circuit_equivalence_with_stats(engine, inputs, c1, c2).0
}

/// Like [`check_circuit_equivalence`] but also reports the combined
/// gate-application statistics of the two runs (peak automaton sizes,
/// reduction counts) — the per-row hot-path numbers printed by `table3`.
pub fn check_circuit_equivalence_with_stats(
    engine: &Engine,
    inputs: &StateSet,
    c1: &Circuit,
    c2: &Circuit,
) -> (EquivalenceResult, crate::ApplyStats) {
    let (out1, stats1) = engine.apply_circuit_with_stats(inputs, c1);
    let (out2, stats2) = engine.apply_circuit_with_stats(inputs, c2);
    (
        equivalence(out1.automaton(), out2.automaton()),
        stats1.merge(&stats2),
    )
}

/// Like [`check_circuit_equivalence_with_stats`], but checks the cancel
/// flag between gates of both runs and returns `None` as soon as it is
/// observed raised (the equivalence decision itself is not interrupted —
/// both circuit applications, the dominant cost, are).
pub fn check_circuit_equivalence_cancellable(
    engine: &Engine,
    inputs: &StateSet,
    c1: &Circuit,
    c2: &Circuit,
    cancel: &crate::CancelFlag,
) -> Option<(EquivalenceResult, crate::ApplyStats)> {
    let interrupt = crate::Interrupt::from_flag(cancel.clone());
    check_circuit_equivalence_interruptible(engine, inputs, c1, c2, &interrupt).ok()
}

/// Like [`check_circuit_equivalence_with_stats`], but governed by an
/// [`Interrupt`](crate::Interrupt) checked between gates of both runs: the
/// first run to trip the flag, the deadline or a size budget stops the
/// whole check with a typed [`Interrupted`](crate::Interrupted) whose
/// partial statistics cover everything applied so far (including a
/// completed first circuit when the second one trips).
pub fn check_circuit_equivalence_interruptible(
    engine: &Engine,
    inputs: &StateSet,
    c1: &Circuit,
    c2: &Circuit,
    interrupt: &crate::Interrupt,
) -> Result<(EquivalenceResult, crate::ApplyStats), crate::Interrupted> {
    let (out1, stats1) = engine.apply_circuit_interruptible(inputs, c1, interrupt)?;
    let (out2, stats2) = engine
        .apply_circuit_interruptible(inputs, c2, interrupt)
        .map_err(|interrupted| interrupted.merge_stats(&stats1))?;
    Ok((
        equivalence(out1.automaton(), out2.automaton()),
        stats1.merge(&stats2),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoq_amplitude::Algebraic;
    use autoq_circuit::generators::{
        bernstein_vazirani, bernstein_vazirani_expected_output, mc_toffoli,
    };
    use autoq_circuit::mutation::insert_gate;
    use autoq_circuit::Gate;

    #[test]
    fn bell_state_triple_holds_and_witnesses_are_produced() {
        let epr = Circuit::from_gates(
            2,
            [
                Gate::H(0),
                Gate::Cnot {
                    control: 0,
                    target: 1,
                },
            ],
        )
        .unwrap();
        let pre = StateSet::basis_state(2, 0);
        let post = StateSet::from_state_fn(2, |b| match b {
            0 | 3 => Algebraic::one_over_sqrt2(),
            _ => Algebraic::zero(),
        });
        let engine = Engine::hybrid();
        assert!(verify(&engine, &pre, &epr, &post, SpecMode::Equality).holds());
        assert!(verify(&engine, &pre, &epr, &post, SpecMode::Inclusion).holds());

        // A buggy EPR circuit (missing the Hadamard) is caught with a witness.
        let buggy = Circuit::from_gates(
            2,
            [Gate::Cnot {
                control: 0,
                target: 1,
            }],
        )
        .unwrap();
        let outcome = verify(&engine, &pre, &buggy, &post, SpecMode::Equality);
        assert!(!outcome.holds());
        let witness = outcome.witness().unwrap();
        assert_eq!(witness.to_amplitude_map().len(), 1);
    }

    #[test]
    fn inclusion_mode_allows_smaller_output_sets() {
        // {|0⟩} X {|0⟩, |1⟩} holds for inclusion but not for equality.
        let x = Circuit::from_gates(1, [Gate::X(0)]).unwrap();
        let pre = StateSet::basis_state(1, 0);
        let post = StateSet::all_basis_states(1);
        let engine = Engine::hybrid();
        assert!(verify(&engine, &pre, &x, &post, SpecMode::Inclusion).holds());
        let equality = verify(&engine, &pre, &x, &post, SpecMode::Equality);
        match equality {
            VerificationOutcome::Violated {
                reachable_but_forbidden,
                ..
            } => {
                assert!(
                    !reachable_but_forbidden,
                    "the missing state is in the post-condition"
                );
            }
            VerificationOutcome::Holds => panic!("equality should fail"),
        }
    }

    #[test]
    fn bernstein_vazirani_verifies_against_its_specification() {
        let hidden = [true, false, true];
        let circuit = bernstein_vazirani(&hidden);
        let n = circuit.num_qubits();
        let pre = StateSet::basis_state(n, 0);
        let post = StateSet::basis_state(n, bernstein_vazirani_expected_output(&hidden).into());
        assert!(verify(&Engine::hybrid(), &pre, &circuit, &post, SpecMode::Equality).holds());
        assert!(verify(
            &Engine::composition(),
            &pre,
            &circuit,
            &post,
            SpecMode::Equality
        )
        .holds());
    }

    #[test]
    fn mc_toffoli_preserves_its_input_set() {
        // Pre = Post = {|c 0^(m-1) t⟩}: the work qubits stay clean, so the
        // set of basis states with zero work qubits is closed under the circuit.
        let m = 3;
        let circuit = mc_toffoli(m);
        let n = circuit.num_qubits();
        let free: Vec<u32> = (0..m).chain(std::iter::once(n - 1)).collect();
        let pre = StateSet::basis_pattern(n, 0, &free);
        assert!(verify(&Engine::hybrid(), &pre, &circuit, &pre, SpecMode::Equality).holds());
    }

    #[test]
    fn injected_bug_is_detected_by_non_equivalence() {
        let circuit = mc_toffoli(3);
        let buggy = insert_gate(&circuit, Gate::X(4), 2);
        let n = circuit.num_qubits();
        let free: Vec<u32> = (0..n).collect();
        let inputs = StateSet::basis_pattern(n, 0, &free[..2]);
        let engine = Engine::hybrid();
        let result = check_circuit_equivalence(&engine, &inputs, &circuit, &buggy);
        assert!(!result.holds());
        // The witness is confirmed by the simulator-level check in the
        // integration tests; here we only require one to exist.
        assert!(result.witness().is_some());
    }

    #[test]
    fn equivalent_circuits_compare_equal_on_all_inputs() {
        // X = H Z H on every basis state.
        let lhs = Circuit::from_gates(1, [Gate::X(0)]).unwrap();
        let rhs = Circuit::from_gates(1, [Gate::H(0), Gate::Z(0), Gate::H(0)]).unwrap();
        let inputs = StateSet::all_basis_states(1);
        assert!(check_circuit_equivalence(&Engine::hybrid(), &inputs, &lhs, &rhs).holds());
        assert!(check_circuit_equivalence(&Engine::composition(), &inputs, &lhs, &rhs).holds());
    }
}
