//! `{P} C {Q}` verification and circuit (non-)equivalence checking.
//!
//! With a [`CertifyPolicy`] other than [`CertifyPolicy::Off`], positive
//! verdicts are *self-certifying*: the inclusion search emits an `AQIC`
//! proof certificate which the independent `autoq-certify` checker
//! validates before the verdict is returned.  A checker rejection is a
//! typed [`SoundnessViolation`] — never a silent pass-through (see
//! `docs/CERTIFICATES.md`).

use autoq_circuit::digest::{sha256, Digest};
use autoq_circuit::Circuit;
use autoq_treeaut::format::certificates_to_binary;
use autoq_treeaut::{
    equivalence, inclusion, inclusion_with_certificate, CertifiedInclusionResult,
    EquivalenceResult, InclusionCertificate, InclusionResult, Tree,
};

use crate::{Engine, StateSet};

/// How the set of output states must relate to the post-condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SpecMode {
    /// The output set must be *equal* to the post-condition.
    #[default]
    Equality,
    /// The output set must be *included* in the post-condition.
    Inclusion,
}

/// The outcome of a verification query.
#[derive(Clone, Debug, PartialEq)]
pub enum VerificationOutcome {
    /// The triple `{P} C {Q}` holds.
    Holds,
    /// The triple is violated; the witness is a quantum state exhibiting the
    /// violation (reachable but not allowed, or allowed but not reachable).
    Violated {
        /// The witness quantum state (a full binary tree).
        witness: Tree,
        /// `true` if the witness is an output state that the post-condition
        /// forbids; `false` if the post-condition requires a state that the
        /// circuit cannot produce (only possible in [`SpecMode::Equality`]).
        reachable_but_forbidden: bool,
    },
}

impl VerificationOutcome {
    /// Returns `true` if the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, VerificationOutcome::Holds)
    }

    /// The witness state of a violation, if any.
    pub fn witness(&self) -> Option<&Tree> {
        match self {
            VerificationOutcome::Holds => None,
            VerificationOutcome::Violated { witness, .. } => Some(witness),
        }
    }
}

/// When to build and check proof certificates for verdicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CertifyPolicy {
    /// Never certify (the pre-existing fast path).
    #[default]
    Off,
    /// Certify positive verdicts: when the comparison holds, every
    /// underlying inclusion is re-run through the certificate-producing
    /// search and the resulting bundle is checked before the verdict is
    /// returned.
    OnHolds,
    /// Certify every inclusion that reports `Included`, even when the
    /// overall verdict is violated (e.g. the forward direction of a failed
    /// equality) — the exhaustive-audit mode.
    Always,
}

impl CertifyPolicy {
    /// Returns `true` when certificates should be produced for a verdict of
    /// the given polarity.
    fn applies(self, holds: bool) -> bool {
        match self {
            CertifyPolicy::Off => false,
            CertifyPolicy::OnHolds => holds,
            CertifyPolicy::Always => true,
        }
    }
}

/// The certification record of one verdict: what was certified, the
/// content digest of its `AQIC` bundle, and the independent checker's
/// outcome.  Since a checker rejection aborts the query with a
/// [`SoundnessViolation`] instead of returning, any record that reaches the
/// caller has `checker_passed == true`; the field exists so the record is
/// self-describing when persisted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CertifiedVerdict {
    /// Whether the certified verdict was positive.
    pub holds: bool,
    /// SHA-256 digest of the `AQIC` certificate bundle.
    pub digest: Digest,
    /// Outcome of the independent checker run on the bundle.
    pub checker_passed: bool,
}

/// The optimized search produced a verdict its own certificate cannot
/// justify: either the certificate builder failed or the independent
/// checker rejected the bundle.  Both are evidence of a soundness bug in
/// the verification stack, so this error is hard — callers must fail the
/// query, never downgrade to an uncertified verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoundnessViolation {
    /// Digest of the rejected bundle, when one was built.
    pub digest: Option<Digest>,
    /// What the builder or checker rejected.
    pub message: String,
}

impl std::fmt::Display for SoundnessViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.digest {
            Some(digest) => write!(f, "soundness violation ({digest}): {}", self.message),
            None => write!(f, "soundness violation: {}", self.message),
        }
    }
}

impl std::error::Error for SoundnessViolation {}

/// Failure modes of a certified, interruptible verification.
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyError {
    /// The run tripped a cancellation flag, deadline or size budget.
    Interrupted(crate::Interrupted),
    /// Certification failed — see [`SoundnessViolation`].
    Soundness(SoundnessViolation),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Interrupted(interrupted) => interrupted.fmt(f),
            VerifyError::Soundness(violation) => violation.fmt(f),
        }
    }
}

impl std::error::Error for VerifyError {}

/// The result of a certified verification: the outcome, the statistics
/// (with [`ApplyStats::certified`](crate::ApplyStats) filled in when a
/// certificate was produced), and the serialized `AQIC` bundle for callers
/// that forward certificates — the daemon ships these bytes to clients.
#[derive(Clone, Debug, PartialEq)]
pub struct CertifiedOutcome {
    /// The verification verdict.
    pub outcome: VerificationOutcome,
    /// Gate-application statistics, including the certification record.
    pub stats: crate::ApplyStats,
    /// The checked `AQIC` certificate bundle, when the policy produced one.
    pub certificate: Option<Vec<u8>>,
}

/// Checks the triple `{pre} circuit {post}`: runs the circuit on the set of
/// states `pre` and compares the set of output states with `post`.
///
/// This is the paper's main verification workflow (Sections 1 and 7.1); on
/// failure a witness state is returned for diagnosis, exactly as the paper's
/// tool produces one via VATA.
///
/// # Examples
///
/// ```
/// use autoq_circuit::{Circuit, Gate};
/// use autoq_core::{verify, Engine, SpecMode, StateSet};
///
/// // {|0⟩} X {|1⟩} holds; {|0⟩} X {|0⟩} is violated with witness |1⟩.
/// let x = Circuit::from_gates(1, [Gate::X(0)]).unwrap();
/// let engine = Engine::hybrid();
/// assert!(verify(&engine, &StateSet::basis_state(1, 0), &x, &StateSet::basis_state(1, 1), SpecMode::Equality).holds());
/// let bad = verify(&engine, &StateSet::basis_state(1, 0), &x, &StateSet::basis_state(1, 0), SpecMode::Equality);
/// assert!(!bad.holds());
/// ```
pub fn verify(
    engine: &Engine,
    pre: &StateSet,
    circuit: &Circuit,
    post: &StateSet,
    mode: SpecMode,
) -> VerificationOutcome {
    let output = engine.apply_circuit(pre, circuit);
    compare_with_post(&output, post, mode)
}

/// Compares an already-computed output set against the post-condition.
pub fn compare_with_post(
    output: &StateSet,
    post: &StateSet,
    mode: SpecMode,
) -> VerificationOutcome {
    match mode {
        SpecMode::Inclusion => match inclusion(output.automaton(), post.automaton()) {
            InclusionResult::Included => VerificationOutcome::Holds,
            InclusionResult::Counterexample(witness) => VerificationOutcome::Violated {
                witness,
                reachable_but_forbidden: true,
            },
        },
        SpecMode::Equality => match equivalence(output.automaton(), post.automaton()) {
            EquivalenceResult::Equivalent => VerificationOutcome::Holds,
            EquivalenceResult::OnlyInLeft(witness) => VerificationOutcome::Violated {
                witness,
                reachable_but_forbidden: true,
            },
            EquivalenceResult::OnlyInRight(witness) => VerificationOutcome::Violated {
                witness,
                reachable_but_forbidden: false,
            },
        },
    }
}

/// A verdict plus, when the policy produced one, its certification record
/// and the serialized `AQIC` bundle bytes.
pub type CertifiedComparison = (VerificationOutcome, Option<(CertifiedVerdict, Vec<u8>)>);

/// Like [`compare_with_post`], but governed by a [`CertifyPolicy`]: when
/// the policy applies to the computed verdict, every underlying inclusion
/// is re-run through the certificate-producing search, the resulting `AQIC`
/// bundle is digested and validated by the independent `autoq-certify`
/// checker, and only then is the verdict released together with the
/// [`CertifiedVerdict`] record and the bundle bytes.
///
/// Bundle shape: one certificate for [`SpecMode::Inclusion`]; for
/// [`SpecMode::Equality`] the directions `[output ⊆ post, post ⊆ output]`
/// in that order (under [`CertifyPolicy::Always`] a violated equality may
/// carry just the forward certificate when only that direction held).
///
/// Any certificate the builder cannot produce or the checker rejects is a
/// [`SoundnessViolation`]; the uncertified verdict is deliberately
/// unrecoverable from this path.
pub fn compare_with_post_certified(
    output: &StateSet,
    post: &StateSet,
    mode: SpecMode,
    certify: CertifyPolicy,
) -> Result<CertifiedComparison, SoundnessViolation> {
    if certify == CertifyPolicy::Off {
        return Ok((compare_with_post(output, post, mode), None));
    }
    let certified_inclusion =
        |a: &StateSet, b: &StateSet| -> Result<CertifiedInclusionResult, SoundnessViolation> {
            inclusion_with_certificate(a.automaton(), b.automaton()).map_err(|error| {
                SoundnessViolation {
                    digest: None,
                    message: error.to_string(),
                }
            })
        };
    let mut certs: Vec<InclusionCertificate> = Vec::new();
    let outcome = match mode {
        SpecMode::Inclusion => match certified_inclusion(output, post)? {
            CertifiedInclusionResult::Included(cert) => {
                certs.push(cert);
                VerificationOutcome::Holds
            }
            CertifiedInclusionResult::Counterexample(witness) => VerificationOutcome::Violated {
                witness,
                reachable_but_forbidden: true,
            },
        },
        SpecMode::Equality => match certified_inclusion(output, post)? {
            CertifiedInclusionResult::Counterexample(witness) => VerificationOutcome::Violated {
                witness,
                reachable_but_forbidden: true,
            },
            CertifiedInclusionResult::Included(forward) => {
                certs.push(forward);
                match certified_inclusion(post, output)? {
                    CertifiedInclusionResult::Counterexample(witness) => {
                        VerificationOutcome::Violated {
                            witness,
                            reachable_but_forbidden: false,
                        }
                    }
                    CertifiedInclusionResult::Included(backward) => {
                        certs.push(backward);
                        VerificationOutcome::Holds
                    }
                }
            }
        },
    };
    if certs.is_empty() || !certify.applies(outcome.holds()) {
        return Ok((outcome, None));
    }
    let bytes = certificates_to_binary(&certs);
    let digest = sha256(&bytes);
    for (index, cert) in certs.iter().enumerate() {
        // Direction order matches the bundle contract documented above.
        let (a, b) = if index == 0 {
            (output, post)
        } else {
            (post, output)
        };
        autoq_certify::check_inclusion(a.automaton(), b.automaton(), cert).map_err(|error| {
            SoundnessViolation {
                digest: Some(digest),
                message: error.to_string(),
            }
        })?;
    }
    let record = CertifiedVerdict {
        holds: outcome.holds(),
        digest,
        checker_passed: true,
    };
    Ok((outcome, Some((record, bytes))))
}

/// Like [`verify`] but checks `cancel` between gates and returns `None` as
/// soon as the flag is observed raised — the cooperative-cancellation entry
/// point used by the verification daemon when a client disconnects or
/// cancels mid-job.  The post-condition comparison itself is not
/// interrupted; the circuit application, the dominant cost, is.
pub fn verify_cancellable(
    engine: &Engine,
    pre: &StateSet,
    circuit: &Circuit,
    post: &StateSet,
    mode: SpecMode,
    cancel: &crate::CancelFlag,
) -> Option<VerificationOutcome> {
    let (output, _) = engine.apply_circuit_cancellable(pre, circuit, cancel)?;
    Some(compare_with_post(&output, post, mode))
}

/// Like [`verify_cancellable`], but also reports gate-application statistics
/// and calls `observer(applied, total)` after every applied gate — the
/// daemon's progress-streaming hook.
///
/// `certify` governs verdict certification: with a policy other than
/// [`CertifyPolicy::Off`], applicable verdicts are only released after
/// their proof certificate passes the independent checker, and the
/// [`CertifiedVerdict`] record lands in the returned statistics.  `Ok(None)`
/// means cancelled; a certification failure is a hard
/// [`SoundnessViolation`].
#[allow(clippy::too_many_arguments)]
pub fn verify_observed(
    engine: &Engine,
    pre: &StateSet,
    circuit: &Circuit,
    post: &StateSet,
    mode: SpecMode,
    certify: CertifyPolicy,
    cancel: &crate::CancelFlag,
    observer: &mut dyn FnMut(usize, usize),
) -> Result<Option<(VerificationOutcome, crate::ApplyStats)>, SoundnessViolation> {
    let Some((output, mut stats)) = engine.apply_circuit_observed(pre, circuit, cancel, observer)
    else {
        return Ok(None);
    };
    let (outcome, certified) = compare_with_post_certified(&output, post, mode, certify)?;
    if let Some((record, _bundle)) = certified {
        stats.certified = Some(record);
    }
    Ok(Some((outcome, stats)))
}

/// Like [`verify`] but governed by an [`Interrupt`](crate::Interrupt):
/// cancellation, the wall-clock deadline and the peak-size budgets are
/// checked between gates, so a verification that would blow up returns a
/// typed [`Interrupted`](crate::Interrupted) (with the statistics gathered
/// so far) within one gate boundary of its limit — no hang, no OOM.  The
/// post-condition comparison itself is not interrupted; the circuit
/// application, the dominant cost, is.
pub fn verify_interruptible(
    engine: &Engine,
    pre: &StateSet,
    circuit: &Circuit,
    post: &StateSet,
    mode: SpecMode,
    interrupt: &crate::Interrupt,
) -> Result<(VerificationOutcome, crate::ApplyStats), crate::Interrupted> {
    let (output, stats) = engine.apply_circuit_interruptible(pre, circuit, interrupt)?;
    Ok((compare_with_post(&output, post, mode), stats))
}

/// [`verify_interruptible`] with the daemon's progress-observer hook.
pub fn verify_interruptible_observed(
    engine: &Engine,
    pre: &StateSet,
    circuit: &Circuit,
    post: &StateSet,
    mode: SpecMode,
    interrupt: &crate::Interrupt,
    observer: &mut dyn FnMut(usize, usize),
) -> Result<(VerificationOutcome, crate::ApplyStats), crate::Interrupted> {
    let (output, stats) =
        engine.apply_circuit_interruptible_observed(pre, circuit, interrupt, observer)?;
    Ok((compare_with_post(&output, post, mode), stats))
}

/// The most general verification entry point: interruptible, observed, and
/// certified — the daemon's path when a client sets `want_certificate`.
///
/// On success the [`CertifiedOutcome`] carries the serialized `AQIC` bundle
/// (when the policy produced one) so callers can forward or persist it; the
/// certification record is also in `stats.certified`.  Failure separates
/// resource interruption from certification failure via [`VerifyError`].
#[allow(clippy::too_many_arguments)]
pub fn verify_interruptible_certified(
    engine: &Engine,
    pre: &StateSet,
    circuit: &Circuit,
    post: &StateSet,
    mode: SpecMode,
    certify: CertifyPolicy,
    interrupt: &crate::Interrupt,
    observer: &mut dyn FnMut(usize, usize),
) -> Result<CertifiedOutcome, VerifyError> {
    let (output, mut stats) = engine
        .apply_circuit_interruptible_observed(pre, circuit, interrupt, observer)
        .map_err(VerifyError::Interrupted)?;
    let (outcome, certified) = compare_with_post_certified(&output, post, mode, certify)
        .map_err(VerifyError::Soundness)?;
    let certificate = certified.map(|(record, bundle)| {
        stats.certified = Some(record);
        bundle
    });
    Ok(CertifiedOutcome {
        outcome,
        stats,
        certificate,
    })
}

/// Runs two circuits on the same set of input states and compares the sets
/// of output states — the paper's non-equivalence check for validating
/// circuit optimisations.
///
/// A non-equivalent answer is definitive ("the circuits differ on this
/// input set"); an equivalent answer only means the two circuits agree *on
/// the given inputs*.
///
/// ```
/// use autoq_circuit::{Circuit, Gate};
/// use autoq_core::{check_circuit_equivalence, Engine, StateSet};
///
/// let c1 = Circuit::from_gates(2, [Gate::H(0), Gate::H(0)]).unwrap();
/// let identity = Circuit::new(2);
/// let inputs = StateSet::all_basis_states(2);
/// let engine = Engine::hybrid();
/// assert!(check_circuit_equivalence(&engine, &inputs, &c1, &identity).holds());
/// ```
pub fn check_circuit_equivalence(
    engine: &Engine,
    inputs: &StateSet,
    c1: &Circuit,
    c2: &Circuit,
) -> EquivalenceResult {
    check_circuit_equivalence_with_stats(engine, inputs, c1, c2).0
}

/// Like [`check_circuit_equivalence`] but also reports the combined
/// gate-application statistics of the two runs (peak automaton sizes,
/// reduction counts) — the per-row hot-path numbers printed by `table3`.
pub fn check_circuit_equivalence_with_stats(
    engine: &Engine,
    inputs: &StateSet,
    c1: &Circuit,
    c2: &Circuit,
) -> (EquivalenceResult, crate::ApplyStats) {
    let (out1, stats1) = engine.apply_circuit_with_stats(inputs, c1);
    let (out2, stats2) = engine.apply_circuit_with_stats(inputs, c2);
    (
        equivalence(out1.automaton(), out2.automaton()),
        stats1.merge(&stats2),
    )
}

/// Like [`check_circuit_equivalence_with_stats`], but checks the cancel
/// flag between gates of both runs and returns `None` as soon as it is
/// observed raised (the equivalence decision itself is not interrupted —
/// both circuit applications, the dominant cost, are).
pub fn check_circuit_equivalence_cancellable(
    engine: &Engine,
    inputs: &StateSet,
    c1: &Circuit,
    c2: &Circuit,
    cancel: &crate::CancelFlag,
) -> Option<(EquivalenceResult, crate::ApplyStats)> {
    let interrupt = crate::Interrupt::from_flag(cancel.clone());
    check_circuit_equivalence_interruptible(engine, inputs, c1, c2, &interrupt).ok()
}

/// Like [`check_circuit_equivalence_with_stats`], but governed by an
/// [`Interrupt`](crate::Interrupt) checked between gates of both runs: the
/// first run to trip the flag, the deadline or a size budget stops the
/// whole check with a typed [`Interrupted`](crate::Interrupted) whose
/// partial statistics cover everything applied so far (including a
/// completed first circuit when the second one trips).
pub fn check_circuit_equivalence_interruptible(
    engine: &Engine,
    inputs: &StateSet,
    c1: &Circuit,
    c2: &Circuit,
    interrupt: &crate::Interrupt,
) -> Result<(EquivalenceResult, crate::ApplyStats), crate::Interrupted> {
    let (out1, stats1) = engine.apply_circuit_interruptible(inputs, c1, interrupt)?;
    let (out2, stats2) = engine
        .apply_circuit_interruptible(inputs, c2, interrupt)
        .map_err(|interrupted| interrupted.merge_stats(&stats1))?;
    Ok((
        equivalence(out1.automaton(), out2.automaton()),
        stats1.merge(&stats2),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoq_amplitude::Algebraic;
    use autoq_circuit::generators::{
        bernstein_vazirani, bernstein_vazirani_expected_output, mc_toffoli,
    };
    use autoq_circuit::mutation::insert_gate;
    use autoq_circuit::Gate;

    #[test]
    fn bell_state_triple_holds_and_witnesses_are_produced() {
        let epr = Circuit::from_gates(
            2,
            [
                Gate::H(0),
                Gate::Cnot {
                    control: 0,
                    target: 1,
                },
            ],
        )
        .unwrap();
        let pre = StateSet::basis_state(2, 0);
        let post = StateSet::from_state_fn(2, |b| match b {
            0 | 3 => Algebraic::one_over_sqrt2(),
            _ => Algebraic::zero(),
        });
        let engine = Engine::hybrid();
        assert!(verify(&engine, &pre, &epr, &post, SpecMode::Equality).holds());
        assert!(verify(&engine, &pre, &epr, &post, SpecMode::Inclusion).holds());

        // A buggy EPR circuit (missing the Hadamard) is caught with a witness.
        let buggy = Circuit::from_gates(
            2,
            [Gate::Cnot {
                control: 0,
                target: 1,
            }],
        )
        .unwrap();
        let outcome = verify(&engine, &pre, &buggy, &post, SpecMode::Equality);
        assert!(!outcome.holds());
        let witness = outcome.witness().unwrap();
        assert_eq!(witness.to_amplitude_map().len(), 1);
    }

    #[test]
    fn certified_verdicts_carry_checked_certificates() {
        let epr = Circuit::from_gates(
            2,
            [
                Gate::H(0),
                Gate::Cnot {
                    control: 0,
                    target: 1,
                },
            ],
        )
        .unwrap();
        let pre = StateSet::basis_state(2, 0);
        let post = StateSet::from_state_fn(2, |b| match b {
            0 | 3 => Algebraic::one_over_sqrt2(),
            _ => Algebraic::zero(),
        });
        let engine = Engine::hybrid();
        let result = verify_interruptible_certified(
            &engine,
            &pre,
            &epr,
            &post,
            SpecMode::Equality,
            CertifyPolicy::OnHolds,
            &crate::Interrupt::new(),
            &mut |_, _| {},
        )
        .expect("certification must succeed");
        assert!(result.outcome.holds());
        let bundle = result.certificate.expect("OnHolds emits a bundle");
        let record = result.stats.certified.expect("record lands in stats");
        assert!(record.holds && record.checker_passed);
        assert_eq!(record.digest, sha256(&bundle));
        // An equality verdict ships both directions.
        let certs = autoq_treeaut::format::certificates_from_binary(&bundle).unwrap();
        assert_eq!(certs.len(), 2);

        // A violated verdict under OnHolds yields no certificate, while the
        // verdict itself is unchanged.
        let wrong_post = StateSet::basis_state(2, 0);
        let (outcome, certified) = compare_with_post_certified(
            &StateSet::basis_state(2, 3),
            &wrong_post,
            SpecMode::Equality,
            CertifyPolicy::OnHolds,
        )
        .unwrap();
        assert!(!outcome.holds());
        assert!(certified.is_none());
    }

    #[test]
    fn certify_always_covers_held_directions_of_violated_verdicts() {
        // {|0⟩} ⊂ {|0⟩, |1⟩}: equality is violated (only the forward
        // direction holds), so Always certifies exactly one direction.
        let small = StateSet::basis_state(1, 0);
        let big = StateSet::all_basis_states(1);
        let (outcome, certified) =
            compare_with_post_certified(&small, &big, SpecMode::Equality, CertifyPolicy::Always)
                .unwrap();
        assert!(!outcome.holds());
        let (record, bundle) = certified.expect("forward direction held");
        assert!(!record.holds && record.checker_passed);
        let certs = autoq_treeaut::format::certificates_from_binary(&bundle).unwrap();
        assert_eq!(certs.len(), 1);
        // And under OnHolds the same comparison stays uncertified.
        let (_, none) =
            compare_with_post_certified(&small, &big, SpecMode::Equality, CertifyPolicy::OnHolds)
                .unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn inclusion_mode_allows_smaller_output_sets() {
        // {|0⟩} X {|0⟩, |1⟩} holds for inclusion but not for equality.
        let x = Circuit::from_gates(1, [Gate::X(0)]).unwrap();
        let pre = StateSet::basis_state(1, 0);
        let post = StateSet::all_basis_states(1);
        let engine = Engine::hybrid();
        assert!(verify(&engine, &pre, &x, &post, SpecMode::Inclusion).holds());
        let equality = verify(&engine, &pre, &x, &post, SpecMode::Equality);
        match equality {
            VerificationOutcome::Violated {
                reachable_but_forbidden,
                ..
            } => {
                assert!(
                    !reachable_but_forbidden,
                    "the missing state is in the post-condition"
                );
            }
            VerificationOutcome::Holds => panic!("equality should fail"),
        }
    }

    #[test]
    fn bernstein_vazirani_verifies_against_its_specification() {
        let hidden = [true, false, true];
        let circuit = bernstein_vazirani(&hidden);
        let n = circuit.num_qubits();
        let pre = StateSet::basis_state(n, 0);
        let post = StateSet::basis_state(n, bernstein_vazirani_expected_output(&hidden).into());
        assert!(verify(&Engine::hybrid(), &pre, &circuit, &post, SpecMode::Equality).holds());
        assert!(verify(
            &Engine::composition(),
            &pre,
            &circuit,
            &post,
            SpecMode::Equality
        )
        .holds());
    }

    #[test]
    fn mc_toffoli_preserves_its_input_set() {
        // Pre = Post = {|c 0^(m-1) t⟩}: the work qubits stay clean, so the
        // set of basis states with zero work qubits is closed under the circuit.
        let m = 3;
        let circuit = mc_toffoli(m);
        let n = circuit.num_qubits();
        let free: Vec<u32> = (0..m).chain(std::iter::once(n - 1)).collect();
        let pre = StateSet::basis_pattern(n, 0, &free);
        assert!(verify(&Engine::hybrid(), &pre, &circuit, &pre, SpecMode::Equality).holds());
    }

    #[test]
    fn injected_bug_is_detected_by_non_equivalence() {
        let circuit = mc_toffoli(3);
        let buggy = insert_gate(&circuit, Gate::X(4), 2);
        let n = circuit.num_qubits();
        let free: Vec<u32> = (0..n).collect();
        let inputs = StateSet::basis_pattern(n, 0, &free[..2]);
        let engine = Engine::hybrid();
        let result = check_circuit_equivalence(&engine, &inputs, &circuit, &buggy);
        assert!(!result.holds());
        // The witness is confirmed by the simulator-level check in the
        // integration tests; here we only require one to exist.
        assert!(result.witness().is_some());
    }

    #[test]
    fn equivalent_circuits_compare_equal_on_all_inputs() {
        // X = H Z H on every basis state.
        let lhs = Circuit::from_gates(1, [Gate::X(0)]).unwrap();
        let rhs = Circuit::from_gates(1, [Gate::H(0), Gate::Z(0), Gate::H(0)]).unwrap();
        let inputs = StateSet::all_basis_states(1);
        assert!(check_circuit_equivalence(&Engine::hybrid(), &inputs, &lhs, &rhs).holds());
        assert!(check_circuit_equivalence(&Engine::composition(), &inputs, &lhs, &rhs).holds());
    }
}
