//! The composition-based encoding of quantum gates (Section 6).
//!
//! A gate is applied to a tree automaton by (1) *tagging* the automaton so
//! every tree keeps a unique identity (Algorithm 3), (2) evaluating the
//! gate's symbolic update formula term by term with the tag-preserving
//! *restriction* (Algorithm 4), *multiplication* (Algorithm 5) and
//! *projection* (Algorithm 6–8, via forward/backward variable-order
//! swapping) operations, (3) combining the per-term automata with the
//! *binary operation* (Algorithm 9), and (4) *untagging* the result.
//!
//! The composition approach supports every gate of Table 1 — including the
//! Hadamard and π/2 rotations, which the permutation-based approach of
//! Section 5 cannot express — at the price of more expensive constructions.

use std::collections::HashMap;

use autoq_amplitude::Algebraic;
use autoq_treeaut::{InternalSymbol, StateId, Tag, TreeAutomaton};

use crate::formula::{CombineSign, ScaleFactor, UpdateExpr};

/// Applies a gate's update formula to an (untagged) automaton and returns the
/// untagged result (not yet reduced).
///
/// This is the complete pipeline of Section 6.2: tag → per-term construction
/// → binary combination → untag.
pub fn apply_formula(automaton: &TreeAutomaton, formula: &UpdateExpr) -> TreeAutomaton {
    let mut working = automaton.clone();
    apply_formula_in_place(&mut working, formula);
    working
}

/// In-place variant of [`apply_formula`], used by the engine's working
/// automaton so composition gates tag and untag without an extra
/// whole-automaton copy per gate.
pub fn apply_formula_in_place(automaton: &mut TreeAutomaton, formula: &UpdateExpr) {
    tag_in_place(automaton);
    let mut result = evaluate(formula, automaton);
    result.untag_in_place();
    *automaton = result;
}

/// Evaluates an update-formula term over a tagged source automaton.
pub fn evaluate(expr: &UpdateExpr, tagged_source: &TreeAutomaton) -> TreeAutomaton {
    match expr {
        UpdateExpr::Source => tagged_source.clone(),
        UpdateExpr::Proj { qubit, bit } => project(tagged_source, *qubit, *bit),
        UpdateExpr::Restrict { qubit, bit, inner } => {
            let mut automaton = evaluate(inner, tagged_source);
            restrict_in_place(&mut automaton, *qubit, *bit);
            automaton
        }
        UpdateExpr::Scale { factor, inner } => {
            let mut automaton = evaluate(inner, tagged_source);
            multiply_in_place(&mut automaton, *factor);
            automaton
        }
        UpdateExpr::Combine { sign, lhs, rhs } => binary_op(
            &evaluate(lhs, tagged_source),
            &evaluate(rhs, tagged_source),
            *sign,
        ),
    }
}

/// The tagging procedure (Algorithm 3): gives every internal transition a
/// unique tag so that every accepted tree has a unique "shape identity".
pub fn tag(automaton: &TreeAutomaton) -> TreeAutomaton {
    let mut result = automaton.clone();
    tag_in_place(&mut result);
    result
}

/// In-place variant of [`tag`]: rewrites the symbols without copying the
/// automaton (one full copy saved per composition-encoded gate).
pub fn tag_in_place(automaton: &mut TreeAutomaton) {
    for (index, transition) in automaton.internal.iter_mut().enumerate() {
        transition.symbol = transition
            .symbol
            .untagged()
            .with_tag(Tag::Single(index as u64 + 1));
    }
    automaton.invalidate_index();
}

/// The restriction operation (Algorithm 4): `B_{x_t}·T` (`bit = true`) keeps
/// the amplitudes on branches where qubit `t` is `1` and zeroes the others;
/// `B̄_{x_t}·T` (`bit = false`) is symmetric.
pub fn restrict(automaton: &TreeAutomaton, qubit: u32, bit: bool) -> TreeAutomaton {
    let mut result = automaton.clone();
    restrict_in_place(&mut result, qubit, bit);
    result
}

/// In-place variant of [`restrict`].
pub fn restrict_in_place(automaton: &mut TreeAutomaton, qubit: u32, bit: bool) {
    // Primed copy with all leaves zeroed; structure (and tags) identical.
    let zeroed = automaton.map_leaves(|_| Algebraic::zero());
    let original_count = automaton.internal.len();
    let offset = automaton.import_disjoint(&zeroed);
    for transition in automaton.internal.iter_mut().take(original_count) {
        if transition.symbol.var == qubit {
            if bit {
                // keep x_t = 1, zero the left (x_t = 0) subtree
                transition.left = transition.left.offset(offset);
            } else {
                transition.right = transition.right.offset(offset);
            }
        }
    }
    automaton.invalidate_index();
}

/// The multiplication operation (Algorithm 5, generalised to all scalar
/// factors appearing in Table 1): rewrites every leaf value.
pub fn multiply(automaton: &TreeAutomaton, factor: ScaleFactor) -> TreeAutomaton {
    let mut result = automaton.clone();
    multiply_in_place(&mut result, factor);
    result
}

/// In-place variant of [`multiply`].
pub fn multiply_in_place(automaton: &mut TreeAutomaton, factor: ScaleFactor) {
    automaton.map_leaves_in_place(|value| match factor {
        ScaleFactor::OmegaPow(j) => value.mul_omega_pow(j as i64),
        ScaleFactor::Neg => -value,
        ScaleFactor::InvSqrt2 => value.div_sqrt2(),
    });
}

/// The projection operation (Eq. (13)): `T_{x_t}` (`bit = true`) replaces
/// both subtrees of every `x_t` node by its `1`-subtree; `T_{x̄_t}` is
/// symmetric.  For qubits above the leaf layer the variable is first moved
/// to the bottom with forward swaps, copied there, and moved back.
pub fn project(automaton: &TreeAutomaton, qubit: u32, bit: bool) -> TreeAutomaton {
    let bottom = automaton.num_vars - 1;
    if qubit == bottom {
        let mut result = automaton.clone();
        subtree_copy_in_place(&mut result, qubit, bit);
        return result;
    }
    let swaps = bottom - qubit;
    let mut current = forward_swap(automaton, qubit);
    for _ in 1..swaps {
        current = forward_swap(&current, qubit);
    }
    subtree_copy_in_place(&mut current, qubit, bit);
    for _ in 0..swaps {
        current = backward_swap(&current, qubit);
    }
    current
}

/// The subtree-copying procedure (Algorithm 6), only valid at the layer just
/// above the leaves (Lemma 6.8).
pub fn subtree_copy(automaton: &TreeAutomaton, qubit: u32, bit: bool) -> TreeAutomaton {
    let mut result = automaton.clone();
    subtree_copy_in_place(&mut result, qubit, bit);
    result
}

/// In-place variant of [`subtree_copy`].
pub fn subtree_copy_in_place(automaton: &mut TreeAutomaton, qubit: u32, bit: bool) {
    for transition in automaton.internal.iter_mut() {
        if transition.symbol.var == qubit {
            let copied = if bit {
                transition.right
            } else {
                transition.left
            };
            transition.left = copied;
            transition.right = copied;
        }
    }
    automaton.invalidate_index();
}

/// The forward variable-order swapping procedure (Algorithm 7): pushes the
/// `x_t` layer one level down, remembering the tags of the displaced layer
/// in a [`Tag::Pair`] so that [`backward_swap`] can restore them.
pub fn forward_swap(automaton: &TreeAutomaton, qubit: u32) -> TreeAutomaton {
    let mut result = TreeAutomaton::new(automaton.num_vars);
    result.num_states = automaton.num_states;
    result.roots = automaton.roots.clone();
    result.leaves = automaton.leaves.clone();

    // Index the child transitions by parent state.
    let mut by_parent: HashMap<StateId, Vec<usize>> = HashMap::new();
    for (index, transition) in automaton.internal.iter().enumerate() {
        by_parent.entry(transition.parent).or_default().push(index);
    }

    // States interned by the content of their single new transition.
    let mut interned: HashMap<(InternalSymbol, StateId, StateId), StateId> = HashMap::new();
    let mut removed: Vec<bool> = vec![false; automaton.internal.len()];
    let mut new_transitions: Vec<(StateId, InternalSymbol, StateId, StateId)> = Vec::new();

    for (upper_index, upper) in automaton.internal.iter().enumerate() {
        if upper.symbol.var != qubit {
            continue;
        }
        let left_children = by_parent.get(&upper.left).cloned().unwrap_or_default();
        let right_children = by_parent.get(&upper.right).cloned().unwrap_or_default();
        if left_children.is_empty() || right_children.is_empty() {
            continue;
        }
        removed[upper_index] = true;
        for &li in &left_children {
            for &ri in &right_children {
                let left_t = &automaton.internal[li];
                let right_t = &automaton.internal[ri];
                if left_t.symbol.var != right_t.symbol.var {
                    continue;
                }
                removed[li] = true;
                removed[ri] = true;
                let tag_left = single_tag(left_t.symbol.tag);
                let tag_right = single_tag(right_t.symbol.tag);
                let new_upper_symbol =
                    InternalSymbol::new(left_t.symbol.var).with_tag(Tag::Pair(tag_left, tag_right));
                // q'_0 generates x_t^h(q00, q10); q'_1 generates x_t^h(q01, q11).
                let lower_symbol = upper.symbol;
                let q0 = intern_state(
                    &mut result,
                    &mut interned,
                    lower_symbol,
                    left_t.left,
                    right_t.left,
                    &mut new_transitions,
                );
                let q1 = intern_state(
                    &mut result,
                    &mut interned,
                    lower_symbol,
                    left_t.right,
                    right_t.right,
                    &mut new_transitions,
                );
                new_transitions.push((upper.parent, new_upper_symbol, q0, q1));
            }
        }
    }

    for (index, transition) in automaton.internal.iter().enumerate() {
        if !removed[index] {
            result.internal.push(transition.clone());
        }
    }
    for (parent, symbol, left, right) in new_transitions {
        result.add_internal(parent, symbol, left, right);
    }
    result.dedup_transitions();
    result
}

/// The backward variable-order swapping procedure (Algorithm 8): restores a
/// layer displaced by [`forward_swap`], using the remembered tag pair.
pub fn backward_swap(automaton: &TreeAutomaton, qubit: u32) -> TreeAutomaton {
    let mut result = TreeAutomaton::new(automaton.num_vars);
    result.num_states = automaton.num_states;
    result.roots = automaton.roots.clone();
    result.leaves = automaton.leaves.clone();

    let mut by_parent: HashMap<StateId, Vec<usize>> = HashMap::new();
    for (index, transition) in automaton.internal.iter().enumerate() {
        by_parent.entry(transition.parent).or_default().push(index);
    }

    let mut interned: HashMap<(InternalSymbol, StateId, StateId), StateId> = HashMap::new();
    let mut removed: Vec<bool> = vec![false; automaton.internal.len()];
    let mut new_transitions: Vec<(StateId, InternalSymbol, StateId, StateId)> = Vec::new();

    for (upper_index, upper) in automaton.internal.iter().enumerate() {
        // Only rewrite the Pair-tagged layer sitting directly above x_qubit.
        let (tag_left, tag_right) = match upper.symbol.tag {
            Tag::Pair(i, j) => (i, j),
            _ => continue,
        };
        let left_children = by_parent.get(&upper.left).cloned().unwrap_or_default();
        let right_children = by_parent.get(&upper.right).cloned().unwrap_or_default();
        let mut handled = false;
        for &li in &left_children {
            for &ri in &right_children {
                let left_t = &automaton.internal[li];
                let right_t = &automaton.internal[ri];
                if left_t.symbol.var != qubit || right_t.symbol.var != qubit {
                    continue;
                }
                if left_t.symbol != right_t.symbol {
                    continue;
                }
                handled = true;
                removed[li] = true;
                removed[ri] = true;
                let restored_left_symbol =
                    InternalSymbol::new(upper.symbol.var).with_tag(Tag::Single(tag_left));
                let restored_right_symbol =
                    InternalSymbol::new(upper.symbol.var).with_tag(Tag::Single(tag_right));
                let lower_symbol = left_t.symbol;
                // q''_0 generates x_l^i(q00, q01); q''_1 generates x_l^j(q10, q11).
                let q0 = intern_state(
                    &mut result,
                    &mut interned,
                    restored_left_symbol,
                    left_t.left,
                    right_t.left,
                    &mut new_transitions,
                );
                let q1 = intern_state(
                    &mut result,
                    &mut interned,
                    restored_right_symbol,
                    left_t.right,
                    right_t.right,
                    &mut new_transitions,
                );
                new_transitions.push((upper.parent, lower_symbol, q0, q1));
            }
        }
        if handled {
            removed[upper_index] = true;
        }
    }

    for (index, transition) in automaton.internal.iter().enumerate() {
        if !removed[index] {
            result.internal.push(transition.clone());
        }
    }
    for (parent, symbol, left, right) in new_transitions {
        result.add_internal(parent, symbol, left, right);
    }
    result.dedup_transitions();
    result
}

/// Allocates (or reuses) a state whose single outgoing transition is
/// `symbol(left, right)`.
fn intern_state(
    result: &mut TreeAutomaton,
    interned: &mut HashMap<(InternalSymbol, StateId, StateId), StateId>,
    symbol: InternalSymbol,
    left: StateId,
    right: StateId,
    new_transitions: &mut Vec<(StateId, InternalSymbol, StateId, StateId)>,
) -> StateId {
    if let Some(&state) = interned.get(&(symbol, left, right)) {
        return state;
    }
    let state = result.add_state();
    interned.insert((symbol, left, right), state);
    new_transitions.push((state, symbol, left, right));
    state
}

fn single_tag(tag: Tag) -> u64 {
    match tag {
        Tag::Single(t) => t,
        Tag::None => 0,
        Tag::Pair(i, _) => i,
    }
}

/// The binary operation (Algorithm 9): a product construction that combines
/// only trees with the same tag (guaranteed by matching the uniquely tagged
/// symbols) and adds/subtracts their leaf amplitudes.
pub fn binary_op(a1: &TreeAutomaton, a2: &TreeAutomaton, sign: CombineSign) -> TreeAutomaton {
    let mut result = TreeAutomaton::new(a1.num_vars);
    let mut pair_state: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut worklist: Vec<(StateId, StateId)> = Vec::new();

    let get_state = |result: &mut TreeAutomaton,
                     worklist: &mut Vec<(StateId, StateId)>,
                     pair_state: &mut HashMap<(StateId, StateId), StateId>,
                     q1: StateId,
                     q2: StateId| {
        *pair_state.entry((q1, q2)).or_insert_with(|| {
            worklist.push((q1, q2));
            result.add_state()
        })
    };

    // Root pairs.
    for &r1 in &a1.roots {
        for &r2 in &a2.roots {
            let state = get_state(&mut result, &mut worklist, &mut pair_state, r1, r2);
            result.add_root(state);
        }
    }

    // Adjacency (parent- and leaf-indexed) for both sides.
    let index1 = a1.index();
    let index2 = a2.index();

    while let Some((q1, q2)) = worklist.pop() {
        let parent = pair_state[&(q1, q2)];
        // Internal transitions with matching (tagged) symbols.
        for &i1 in index1.internal_of(q1) {
            for &i2 in index2.internal_of(q2) {
                let t1 = &a1.internal[i1 as usize];
                let t2 = &a2.internal[i2 as usize];
                if t1.symbol != t2.symbol {
                    continue;
                }
                let left = get_state(
                    &mut result,
                    &mut worklist,
                    &mut pair_state,
                    t1.left,
                    t2.left,
                );
                let right = get_state(
                    &mut result,
                    &mut worklist,
                    &mut pair_state,
                    t1.right,
                    t2.right,
                );
                result.add_internal(parent, t1.symbol, left, right);
            }
        }
        // Leaf combination.
        let v1 = index1
            .leaves_of(q1)
            .first()
            .map(|&i| &a1.leaves[i as usize].value);
        let v2 = index2
            .leaves_of(q2)
            .first()
            .map(|&i| &a2.leaves[i as usize].value);
        if let (Some(v1), Some(v2)) = (v1, v2) {
            let value = match sign {
                CombineSign::Plus => v1 + v2,
                CombineSign::Minus => v1 - v2,
            };
            result.add_leaf(parent, value);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::update_formula;
    use autoq_circuit::Gate;
    use autoq_treeaut::{equivalence, Tree};

    fn singleton(tree: &Tree) -> TreeAutomaton {
        TreeAutomaton::from_tree(tree)
    }

    fn state_of(automaton: &TreeAutomaton) -> Vec<std::collections::BTreeMap<u128, Algebraic>> {
        automaton
            .enumerate(64)
            .iter()
            .map(Tree::to_amplitude_map)
            .collect()
    }

    #[test]
    fn tagging_gives_unique_tags() {
        let automaton = TreeAutomaton::from_trees(
            2,
            &[
                Tree::basis_state(2, 0),
                Tree::basis_state(2, 1),
                Tree::basis_state(2, 3),
            ],
        );
        let tagged = tag(&automaton);
        let mut tags: Vec<_> = tagged.internal.iter().map(|t| t.symbol.tag).collect();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), tagged.internal.len(), "tags must be unique");
        assert_eq!(tagged.untagged().internal.len(), automaton.internal.len());
    }

    #[test]
    fn restriction_zeroes_one_branch() {
        // B_{x_0}·T on |11⟩ keeps it; B̄_{x_0}·T zeroes it.
        let tree = Tree::basis_state(2, 0b11);
        let tagged = tag(&singleton(&tree));
        let keep = restrict(&tagged, 0, true).untagged().reduce();
        let kill = restrict(&tagged, 0, false).untagged().reduce();
        assert_eq!(state_of(&keep), vec![tree.to_amplitude_map()]);
        let killed = state_of(&kill);
        assert_eq!(killed.len(), 1);
        assert!(killed[0].is_empty(), "all amplitudes must be zero");
    }

    #[test]
    fn multiplication_rewrites_leaves() {
        let tree = Tree::basis_state(1, 1);
        let tagged = tag(&singleton(&tree));
        let scaled = multiply(&tagged, ScaleFactor::OmegaPow(2)).untagged();
        let states = state_of(&scaled);
        assert_eq!(states[0][&1], Algebraic::i());
        let halved = multiply(&tagged, ScaleFactor::InvSqrt2).untagged();
        assert_eq!(state_of(&halved)[0][&1], Algebraic::one_over_sqrt2());
        let negated = multiply(&tagged, ScaleFactor::Neg).untagged();
        assert_eq!(state_of(&negated)[0][&1], -&Algebraic::one());
    }

    #[test]
    fn projection_at_the_bottom_layer() {
        // T on 1 qubit: T_{x_0} copies the |1⟩ amplitude everywhere.
        let tree = Tree::from_fn(1, |b| {
            if b == 0 {
                Algebraic::one()
            } else {
                Algebraic::i()
            }
        });
        let tagged = tag(&singleton(&tree));
        let projected = project(&tagged, 0, true).untagged();
        let states = state_of(&projected);
        assert_eq!(states.len(), 1);
        assert_eq!(states[0][&0], Algebraic::i());
        assert_eq!(states[0][&1], Algebraic::i());
    }

    #[test]
    fn projection_above_the_bottom_layer_uses_swaps() {
        // 2 qubits: T(b0 b1) = b0*2 + b1 as amplitude (all distinct).
        let tree = Tree::from_fn(2, |b| Algebraic::from_int(b as i64 + 1));
        let tagged = tag(&singleton(&tree));
        // T_{x̄_0}: fix qubit 0 to 0 → amplitudes (1, 2, 1, 2).
        let projected = project(&tagged, 0, false).untagged().reduce();
        let states = state_of(&projected);
        assert_eq!(states.len(), 1);
        assert_eq!(states[0][&0b00], Algebraic::from_int(1));
        assert_eq!(states[0][&0b01], Algebraic::from_int(2));
        assert_eq!(states[0][&0b10], Algebraic::from_int(1));
        assert_eq!(states[0][&0b11], Algebraic::from_int(2));
        // T_{x_0}: fix qubit 0 to 1 → amplitudes (3, 4, 3, 4).
        let projected = project(&tagged, 0, true).untagged().reduce();
        let states = state_of(&projected);
        assert_eq!(states[0][&0b00], Algebraic::from_int(3));
        assert_eq!(states[0][&0b01], Algebraic::from_int(4));
    }

    #[test]
    fn forward_then_backward_swap_is_identity_on_the_language() {
        let trees = vec![
            Tree::from_fn(3, |b| Algebraic::from_int((b % 3) as i64)),
            Tree::basis_state(3, 5),
        ];
        let automaton = tag(&TreeAutomaton::from_trees(3, &trees));
        let swapped = forward_swap(&automaton, 1);
        let restored = backward_swap(&swapped, 1);
        assert!(equivalence(&automaton.untagged(), &restored.untagged()).holds());
    }

    #[test]
    fn binary_op_adds_amplitudes_of_matching_trees() {
        let tree = Tree::from_fn(1, |b| {
            if b == 0 {
                Algebraic::one()
            } else {
                Algebraic::i()
            }
        });
        let tagged = tag(&singleton(&tree));
        let doubled = binary_op(&tagged, &tagged, CombineSign::Plus)
            .untagged()
            .reduce();
        let states = state_of(&doubled);
        assert_eq!(states.len(), 1);
        assert_eq!(states[0][&0], Algebraic::from_int(2));
        let cancelled = binary_op(&tagged, &tagged, CombineSign::Minus)
            .untagged()
            .reduce();
        assert!(state_of(&cancelled)[0].is_empty());
    }

    #[test]
    fn binary_op_does_not_mix_distinct_trees() {
        // Two different basis states in one automaton: the combination must
        // pair each tree with itself, not cross-combine (the paper's
        // motivation for tagging).
        let automaton =
            TreeAutomaton::from_trees(2, &[Tree::basis_state(2, 0), Tree::basis_state(2, 3)]);
        let tagged = tag(&automaton);
        let doubled = binary_op(&tagged, &tagged, CombineSign::Plus)
            .untagged()
            .reduce();
        let states = state_of(&doubled);
        assert_eq!(states.len(), 2);
        for map in states {
            assert_eq!(
                map.len(),
                1,
                "each combined tree keeps a single non-zero amplitude"
            );
            assert_eq!(map.values().next().unwrap(), &Algebraic::from_int(2));
        }
    }

    #[test]
    fn hadamard_formula_produces_the_plus_state() {
        let formula = update_formula(&Gate::H(0)).unwrap();
        let automaton = singleton(&Tree::basis_state(1, 0));
        let result = apply_formula(&automaton, &formula).reduce();
        let states = state_of(&result);
        assert_eq!(states.len(), 1);
        assert_eq!(states[0][&0], Algebraic::one_over_sqrt2());
        assert_eq!(states[0][&1], Algebraic::one_over_sqrt2());
    }

    #[test]
    fn cnot_formula_flips_conditionally_on_sets() {
        let formula = update_formula(&Gate::Cnot {
            control: 0,
            target: 1,
        })
        .unwrap();
        let automaton = TreeAutomaton::from_trees(
            2,
            &[
                Tree::basis_state(2, 0b00),
                Tree::basis_state(2, 0b10),
                Tree::basis_state(2, 0b11),
            ],
        );
        let result = apply_formula(&automaton, &formula).reduce();
        assert!(result.accepts(&Tree::basis_state(2, 0b00)));
        assert!(result.accepts(&Tree::basis_state(2, 0b11)));
        assert!(result.accepts(&Tree::basis_state(2, 0b10)));
        assert_eq!(result.enumerate(16).len(), 3);
    }
}
