//! The composition-based encoding of quantum gates (Section 6).
//!
//! A gate is applied to a tree automaton by (1) *tagging* the automaton so
//! every tree keeps a unique identity (Algorithm 3), (2) evaluating the
//! gate's symbolic update formula term by term with the tag-preserving
//! *restriction* (Algorithm 4), *multiplication* (Algorithm 5) and
//! *projection* (Algorithm 6–8, via forward/backward variable-order
//! swapping) operations, (3) combining the per-term automata with the
//! *binary operation* (Algorithm 9), and (4) *untagging* the result.
//!
//! The composition approach supports every gate of Table 1 — including the
//! Hadamard and π/2 rotations, which the permutation-based approach of
//! Section 5 cannot express — at the price of more expensive constructions.
//!
//! # The fused swap ladder
//!
//! Projecting qubit `t` of an `n`-qubit automaton runs `n − 1 − t` forward
//! swap passes, one subtree copy, and `n − 1 − t` backward passes — up to
//! `2(n − 1)` whole-automaton rebuilds for a single term at the paper's
//! 70-qubit width.  [`project_with`] therefore drives the ladder through a
//! fused pipeline ([`CompositionOptions`]):
//!
//! * the working automaton is kept *bucketed by variable layer*
//!   (`LadderState`): a swap pass rewrites exactly two layers — the moving
//!   qubit layer and the one it swaps past — so each pass costs O(active
//!   layers) instead of O(automaton), with matching pairs found by hash
//!   join on `(parent, symbol)` rather than a quadratic child scan, and no
//!   per-pass [`TreeAutomaton::dedup_transitions`] (internal transitions
//!   are deduped with an integer-key set as they are emitted; leaves are
//!   never touched, skipping the bigint-cloning leaf dedup entirely);
//! * `(symbol, left, right)` singleton states are interned per pass (a
//!   whole-ladder interner was implemented and proven inert: each pass's
//!   probe keys are disjoint from every entry an earlier pass could have
//!   left behind — see `intern_pass_state`), and a gate's two projections
//!   of the same qubit share one forward ladder through the evaluation
//!   context;
//! * between passes the intermediate automaton is *reduced in-ladder*
//!   (tag-preservingly: tags live in the symbols, so states only merge when
//!   their signatures agree on tags) whenever it grows past
//!   `ladder_growth_factor ×` the size at the last reduction — the safety
//!   valve bounding intermediate blowup.
//!
//! Independent terms of a `Combine` formula are evaluated on scoped threads
//! ([`CompositionOptions::eval_threads`]); the unfused single-threaded
//! ladder is retained as [`project_reference`] and cross-validated by the
//! `composition_equivalence` property tests.

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use autoq_amplitude::intern;
use autoq_treeaut::{
    InternalSymbol, InternalTransition, LeafTransition, StateId, Tag, TreeAutomaton,
};

use crate::formula::{CombineSign, ScaleFactor, UpdateExpr};
use crate::interrupt::{Interrupt, StopReason};

/// Tuning knobs of the composition-encoded gate pipeline (the fused swap
/// ladder and the term evaluator).  The engine derives the effective options
/// from its reduction policy via `Engine::composition_options`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompositionOptions {
    /// In-ladder reduction: between swap passes, reduce the intermediate
    /// automaton once its transition count exceeds this factor times the
    /// count at the ladder entry (or at the previous in-ladder reduction).
    /// `None` disables in-ladder reduction (the `ReductionPolicy::Never`
    /// ablation setting).
    pub ladder_growth_factor: Option<u32>,
    /// Maximum number of OS threads used to evaluate independent
    /// update-formula terms (`1` = fully sequential).  The default is
    /// [`default_eval_threads`]; the `sweep.threads.*` entries of
    /// `BENCH_reduction.json` record the measured 1-vs-N sensitivity.
    pub eval_threads: usize,
}

impl Default for CompositionOptions {
    fn default() -> Self {
        CompositionOptions {
            ladder_growth_factor: Some(2),
            eval_threads: default_eval_threads(),
        }
    }
}

/// The default term-evaluation thread budget: the machine's available
/// parallelism, capped at 8 — an update formula has at most a handful of
/// independent projection-carrying terms, so more threads cannot be used.
pub fn default_eval_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// Peak automaton sizes observed inside one composition-encoded gate
/// (swap ladders and binary combinations included); merged into the
/// engine's `ApplyStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FormulaPeak {
    /// Largest *live* state count (binary-operation products and
    /// post-reduction ladder snapshots — mid-pass allocation counts would
    /// also include states the next trim drops).
    pub states: usize,
    /// Largest transition count anywhere, including between swap passes.
    pub transitions: usize,
}

/// Shared state of one formula evaluation: the options, the spare-thread
/// budget, the peak-size watermarks (all threads update them, so the
/// engine's `ApplyStats` stays honest about in-ladder peaks), and the
/// per-qubit forward-ladder cache shared by a gate's two projections.
struct EvalCtx<'a> {
    opts: &'a CompositionOptions,
    spare_threads: &'a AtomicUsize,
    peak_states: &'a AtomicUsize,
    peak_transitions: &'a AtomicUsize,
    /// `T_{x_t}` and `T_{x̄_t}` of the same formula run the same forward
    /// ladder and differ only in the subtree copy and the way back, so the
    /// forward-laddered automaton is computed once per qubit and shared.
    forward_cache: &'a Mutex<HashMap<u32, Arc<LadderState>>>,
    /// The caller's interrupt, checked between swap-ladder passes so even a
    /// single blowing-up gate stops near its budget (`None` for the
    /// non-interruptible entry points).
    interrupt: Option<&'a Interrupt>,
    /// Set once any thread's checkpoint trips; every loop polls this cheap
    /// flag and unwinds with a partial (discarded) result.
    stopped: &'a AtomicBool,
    /// The first recorded stop reason (the one reported to the caller).
    stop_reason: &'a Mutex<Option<StopReason>>,
}

impl EvalCtx<'_> {
    fn observe_states(&self, states: usize) {
        self.peak_states.fetch_max(states, Ordering::Relaxed);
    }

    fn observe_transitions(&self, transitions: usize) {
        self.peak_transitions
            .fetch_max(transitions, Ordering::Relaxed);
    }

    /// Whether some checkpoint already tripped (cheap, lock-free).
    fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::Relaxed)
    }

    /// Checks the interrupt against the current in-ladder sizes; returns
    /// `true` when the evaluation should unwind.  The first tripping thread
    /// records the reason; later checkpoints only observe the flag.
    fn checkpoint(&self, states: usize, transitions: usize) -> bool {
        if self.is_stopped() {
            return true;
        }
        let Some(interrupt) = self.interrupt else {
            return false;
        };
        match interrupt.check_sizes(states, transitions) {
            Ok(()) => false,
            Err(reason) => {
                let mut slot = self
                    .stop_reason
                    .lock()
                    .unwrap_or_else(|poison| poison.into_inner());
                slot.get_or_insert(reason);
                self.stopped.store(true, Ordering::Relaxed);
                true
            }
        }
    }
}

/// Owning storage behind an [`EvalCtx`]: one per top-level evaluation
/// entry point, borrowed by every term (and every scoped thread) below it.
struct EvalScope<'i> {
    spare_threads: AtomicUsize,
    peak_states: AtomicUsize,
    peak_transitions: AtomicUsize,
    forward_cache: Mutex<HashMap<u32, Arc<LadderState>>>,
    interrupt: Option<&'i Interrupt>,
    stopped: AtomicBool,
    stop_reason: Mutex<Option<StopReason>>,
}

impl<'i> EvalScope<'i> {
    fn new(opts: &CompositionOptions) -> Self {
        EvalScope::with_interrupt(opts, None)
    }

    fn with_interrupt(opts: &CompositionOptions, interrupt: Option<&'i Interrupt>) -> Self {
        EvalScope {
            spare_threads: AtomicUsize::new(opts.eval_threads.saturating_sub(1)),
            peak_states: AtomicUsize::new(0),
            peak_transitions: AtomicUsize::new(0),
            forward_cache: Mutex::new(HashMap::new()),
            interrupt,
            stopped: AtomicBool::new(false),
            stop_reason: Mutex::new(None),
        }
    }

    fn ctx<'a>(&'a self, opts: &'a CompositionOptions) -> EvalCtx<'a> {
        EvalCtx {
            opts,
            spare_threads: &self.spare_threads,
            peak_states: &self.peak_states,
            peak_transitions: &self.peak_transitions,
            forward_cache: &self.forward_cache,
            interrupt: self.interrupt,
            stopped: &self.stopped,
            stop_reason: &self.stop_reason,
        }
    }

    fn peak(&self) -> FormulaPeak {
        FormulaPeak {
            states: self.peak_states.load(Ordering::Relaxed),
            transitions: self.peak_transitions.load(Ordering::Relaxed),
        }
    }

    /// The first stop reason recorded by any checkpoint, if the evaluation
    /// was interrupted.
    fn stop_reason(&self) -> Option<StopReason> {
        *self
            .stop_reason
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// Applies a gate's update formula to an (untagged) automaton and returns the
/// untagged result (not yet reduced).
///
/// This is the complete pipeline of Section 6.2: tag → per-term construction
/// → binary combination → untag.
pub fn apply_formula(automaton: &TreeAutomaton, formula: &UpdateExpr) -> TreeAutomaton {
    let mut working = automaton.clone();
    apply_formula_in_place(&mut working, formula);
    working
}

/// In-place variant of [`apply_formula`], used by the engine's working
/// automaton so composition gates tag and untag without an extra
/// whole-automaton copy per gate.
pub fn apply_formula_in_place(automaton: &mut TreeAutomaton, formula: &UpdateExpr) {
    apply_formula_in_place_with(automaton, formula, &CompositionOptions::default());
}

/// Like [`apply_formula_in_place`] but with explicit [`CompositionOptions`];
/// returns the peak automaton sizes observed anywhere inside the gate
/// (swap ladders and binary combinations included), which the engine merges
/// into its `ApplyStats`.
pub fn apply_formula_in_place_with(
    automaton: &mut TreeAutomaton,
    formula: &UpdateExpr,
    opts: &CompositionOptions,
) -> FormulaPeak {
    apply_formula_in_place_interruptible(automaton, formula, opts, None)
        .expect("formula application without an interrupt cannot stop early")
}

/// Like [`apply_formula_in_place_with`], but checks `interrupt` between the
/// swap-ladder passes of every projection (and before every binary
/// combination), so even a single blowing-up composition gate stops near
/// its budget instead of finishing an arbitrarily large construction.
///
/// On `Err` the automaton is left in an unspecified partial (tagged) state
/// and must be discarded — the engine throws away its whole working
/// automaton when a gate is interrupted, so nothing downstream observes it.
pub fn apply_formula_in_place_interruptible(
    automaton: &mut TreeAutomaton,
    formula: &UpdateExpr,
    opts: &CompositionOptions,
    interrupt: Option<&Interrupt>,
) -> Result<FormulaPeak, StopReason> {
    tag_in_place(automaton);
    // Warm the adjacency index once before helper threads could race to
    // build their own copies of it.
    let _ = automaton.index();
    let scope = EvalScope::with_interrupt(opts, interrupt);
    let result = evaluate_term(formula, automaton, &scope.ctx(opts));
    if let Some(reason) = scope.stop_reason() {
        return Err(reason);
    }
    let mut result = result.into_owned();
    result.untag_in_place();
    *automaton = result;
    Ok(scope.peak())
}

/// Evaluates an update-formula term over a tagged source automaton with the
/// default [`CompositionOptions`].
pub fn evaluate(expr: &UpdateExpr, tagged_source: &TreeAutomaton) -> TreeAutomaton {
    evaluate_with(expr, tagged_source, &CompositionOptions::default())
}

/// Evaluates an update-formula term over a tagged source automaton.
pub fn evaluate_with(
    expr: &UpdateExpr,
    tagged_source: &TreeAutomaton,
    opts: &CompositionOptions,
) -> TreeAutomaton {
    let scope = EvalScope::new(opts);
    evaluate_term(expr, tagged_source, &scope.ctx(opts)).into_owned()
}

/// Evaluates one term, borrowing the source automaton for `Source` leaves so
/// `Combine` feeds [`binary_op`] borrowed operands end to end — no
/// whole-automaton clone for the `T` operand of e.g. the `H` and `Rx(π/2)`
/// formulae.
fn evaluate_term<'a>(
    expr: &UpdateExpr,
    tagged_source: &'a TreeAutomaton,
    ctx: &EvalCtx<'_>,
) -> Cow<'a, TreeAutomaton> {
    match expr {
        UpdateExpr::Source => Cow::Borrowed(tagged_source),
        UpdateExpr::Proj { qubit, bit } => {
            Cow::Owned(project_in_ctx(tagged_source, *qubit, *bit, ctx))
        }
        UpdateExpr::Restrict { qubit, bit, inner } => {
            let mut automaton = evaluate_term(inner, tagged_source, ctx).into_owned();
            restrict_in_place(&mut automaton, *qubit, *bit);
            Cow::Owned(automaton)
        }
        UpdateExpr::Scale { factor, inner } => {
            let mut automaton = evaluate_term(inner, tagged_source, ctx).into_owned();
            multiply_in_place(&mut automaton, *factor);
            Cow::Owned(automaton)
        }
        UpdateExpr::Combine { sign, lhs, rhs } => {
            let (a, b) = evaluate_pair(lhs, rhs, tagged_source, ctx);
            // An interrupted evaluation skips the (product-sized) binary
            // combination: the result is discarded anyway, so hand back the
            // source unchanged instead of paying for a doomed product.
            if ctx.is_stopped() {
                return Cow::Borrowed(tagged_source);
            }
            let combined = binary_op(&a, &b, *sign);
            ctx.observe_states(combined.state_count());
            ctx.observe_transitions(combined.transition_count());
            Cow::Owned(combined)
        }
    }
}

/// Evaluates the two operands of a `Combine`, on two scoped threads when
/// both carry real ladder work and the thread budget has a spare slot.
fn evaluate_pair<'a>(
    lhs: &UpdateExpr,
    rhs: &UpdateExpr,
    tagged_source: &'a TreeAutomaton,
    ctx: &EvalCtx<'_>,
) -> (Cow<'a, TreeAutomaton>, Cow<'a, TreeAutomaton>) {
    let parallel = has_ladder_work(lhs)
        && has_ladder_work(rhs)
        && ctx
            .spare_threads
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |spare| {
                spare.checked_sub(1)
            })
            .is_ok();
    if !parallel {
        return (
            evaluate_term(lhs, tagged_source, ctx),
            evaluate_term(rhs, tagged_source, ctx),
        );
    }
    let pair = std::thread::scope(|scope| {
        let handle = scope.spawn(|| evaluate_term(lhs, tagged_source, ctx));
        let b = evaluate_term(rhs, tagged_source, ctx);
        let a = match handle.join() {
            Ok(a) => a,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        (a, b)
    });
    ctx.spare_threads.fetch_add(1, Ordering::Relaxed);
    pair
}

/// `true` if the term contains a projection (the only operation expensive
/// enough to be worth a thread: restriction/scaling are single passes).
fn has_ladder_work(expr: &UpdateExpr) -> bool {
    match expr {
        UpdateExpr::Source => false,
        UpdateExpr::Proj { .. } => true,
        UpdateExpr::Restrict { inner, .. } | UpdateExpr::Scale { inner, .. } => {
            has_ladder_work(inner)
        }
        UpdateExpr::Combine { lhs, rhs, .. } => has_ladder_work(lhs) || has_ladder_work(rhs),
    }
}

/// The tagging procedure (Algorithm 3): gives every internal transition a
/// unique tag so that every accepted tree has a unique "shape identity".
pub fn tag(automaton: &TreeAutomaton) -> TreeAutomaton {
    let mut result = automaton.clone();
    tag_in_place(&mut result);
    result
}

/// In-place variant of [`tag`]: rewrites the symbols without copying the
/// automaton (one full copy saved per composition-encoded gate).
pub fn tag_in_place(automaton: &mut TreeAutomaton) {
    for (index, transition) in automaton.internal.iter_mut().enumerate() {
        transition.symbol = transition
            .symbol
            .untagged()
            .with_tag(Tag::Single(index as u64 + 1));
    }
    automaton.invalidate_index();
}

/// The restriction operation (Algorithm 4): `B_{x_t}·T` (`bit = true`) keeps
/// the amplitudes on branches where qubit `t` is `1` and zeroes the others;
/// `B̄_{x_t}·T` (`bit = false`) is symmetric.
pub fn restrict(automaton: &TreeAutomaton, qubit: u32, bit: bool) -> TreeAutomaton {
    let mut result = automaton.clone();
    restrict_in_place(&mut result, qubit, bit);
    result
}

/// In-place variant of [`restrict`].
///
/// Only the states actually reachable from the redirected children are
/// imported as the primed zeroed copy (structure and tags identical on that
/// region), and all zeroed *leaf* states collapse into one — the old
/// whole-automaton import left the unreachable majority of the copy behind
/// as dead weight that every later pass still iterated.
pub fn restrict_in_place(automaton: &mut TreeAutomaton, qubit: u32, bit: bool) {
    // The children that will be redirected into the zeroed copy.  When no
    // transition branches on `qubit` the restriction is the identity; skip
    // the import (and the index invalidation it would force) entirely.
    let seeds: Vec<StateId> = automaton
        .internal
        .iter()
        .filter(|t| t.symbol.var == qubit)
        .map(|t| if bit { t.left } else { t.right })
        .collect();
    if seeds.is_empty() {
        return;
    }
    let index = automaton.index();
    let n = automaton.num_states as usize;
    // Downward closure of the seeds: the only part of the zeroed copy the
    // redirected transitions can reach.
    let mut needed = vec![false; n];
    let mut worklist: Vec<StateId> = Vec::new();
    for seed in seeds {
        if !needed[seed.index()] {
            needed[seed.index()] = true;
            worklist.push(seed);
        }
    }
    while let Some(state) = worklist.pop() {
        for &position in index.internal_of(state) {
            let t = &automaton.internal[position as usize];
            for child in [t.left, t.right] {
                if !needed[child.index()] {
                    needed[child.index()] = true;
                    worklist.push(child);
                }
            }
        }
    }
    // Allocate the zeroed region: leaf-only states all carry the same
    // zeroed value, so they share a single state; states with internal
    // transitions (and dead states, which must stay dead) map individually.
    let mut mapping: Vec<Option<StateId>> = vec![None; n];
    let mut next_state = automaton.num_states;
    let mut zero_state: Option<StateId> = None;
    for q in 0..n {
        if !needed[q] {
            continue;
        }
        let state = StateId::new(q as u32);
        let leaf_only = index.internal_of(state).is_empty() && !index.leaves_of(state).is_empty();
        if leaf_only {
            if zero_state.is_none() {
                zero_state = Some(StateId::new(next_state));
                next_state += 1;
            }
            mapping[q] = zero_state;
        } else {
            mapping[q] = Some(StateId::new(next_state));
            next_state += 1;
        }
    }
    // Emit the zeroed region's transitions.
    let mut new_internal: Vec<InternalTransition> = Vec::new();
    let mut new_leaves: Vec<LeafTransition> = Vec::new();
    if let Some(zero) = zero_state {
        new_leaves.push(LeafTransition {
            parent: zero,
            amp: intern::zero_id(),
        });
    }
    for q in 0..n {
        if !needed[q] {
            continue;
        }
        let state = StateId::new(q as u32);
        let mapped = mapping[q].expect("needed states are mapped");
        for &position in index.internal_of(state) {
            let t = &automaton.internal[position as usize];
            new_internal.push(InternalTransition {
                parent: mapped,
                symbol: t.symbol,
                left: mapping[t.left.index()].expect("children of needed states are needed"),
                right: mapping[t.right.index()].expect("children of needed states are needed"),
            });
        }
        // A state with internal transitions *and* a leaf keeps a zeroed
        // leaf of its own (leaf-only states were collapsed above).
        if Some(mapped) != zero_state && !index.leaves_of(state).is_empty() {
            new_leaves.push(LeafTransition {
                parent: mapped,
                amp: intern::zero_id(),
            });
        }
    }
    // Splice the region in and redirect the restricted branch.
    let original_count = automaton.internal.len();
    automaton.num_states = next_state;
    automaton.internal.extend(new_internal);
    automaton.leaves.extend(new_leaves);
    for transition in automaton.internal.iter_mut().take(original_count) {
        if transition.symbol.var == qubit {
            if bit {
                // keep x_t = 1, zero the left (x_t = 0) subtree
                transition.left =
                    mapping[transition.left.index()].expect("redirected child is a seed");
            } else {
                transition.right =
                    mapping[transition.right.index()].expect("redirected child is a seed");
            }
        }
    }
    automaton.invalidate_index();
}

/// The multiplication operation (Algorithm 5, generalised to all scalar
/// factors appearing in Table 1): rewrites every leaf value.
pub fn multiply(automaton: &TreeAutomaton, factor: ScaleFactor) -> TreeAutomaton {
    let mut result = automaton.clone();
    multiply_in_place(&mut result, factor);
    result
}

/// In-place variant of [`multiply`].
pub fn multiply_in_place(automaton: &mut TreeAutomaton, factor: ScaleFactor) {
    automaton.map_leaves_in_place(|value| match factor {
        ScaleFactor::OmegaPow(j) => value.mul_omega_pow(j as i64),
        ScaleFactor::Neg => -value,
        ScaleFactor::InvSqrt2 => value.div_sqrt2(),
    });
}

/// The projection operation (Eq. (13)) with the default
/// [`CompositionOptions`]: `T_{x_t}` (`bit = true`) replaces both subtrees
/// of every `x_t` node by its `1`-subtree; `T_{x̄_t}` is symmetric.  For
/// qubits above the leaf layer the variable is first moved to the bottom
/// with forward swaps, copied there, and moved back.
pub fn project(automaton: &TreeAutomaton, qubit: u32, bit: bool) -> TreeAutomaton {
    project_with(automaton, qubit, bit, &CompositionOptions::default())
}

/// [`project`] through the fused swap ladder: indexed swap passes with
/// ladder-wide state interning and in-ladder reduction (see the module
/// docs).  Cross-validated against [`project_reference`] by the
/// `composition_equivalence` property tests.
pub fn project_with(
    automaton: &TreeAutomaton,
    qubit: u32,
    bit: bool,
    opts: &CompositionOptions,
) -> TreeAutomaton {
    let scope = EvalScope::new(opts);
    project_in_ctx(automaton, qubit, bit, &scope.ctx(opts))
}

fn project_in_ctx(
    automaton: &TreeAutomaton,
    qubit: u32,
    bit: bool,
    ctx: &EvalCtx<'_>,
) -> TreeAutomaton {
    let bottom = automaton.num_vars - 1;
    if qubit == bottom {
        let mut result = automaton.clone();
        subtree_copy_in_place(&mut result, qubit, bit);
        return result;
    }
    let swaps = bottom - qubit;
    // Both projections of the same formula (`T_{x_t}` and `T_{x̄_t}`) run
    // an identical forward ladder — compute it once per qubit and share.
    // The lock is held across the computation on purpose: a second thread
    // asking for the same qubit should wait for the shared result, not
    // redo the ladder.
    let forward = {
        let mut cache = ctx.forward_cache.lock().unwrap_or_else(|e| e.into_inner());
        match cache.get(&qubit) {
            Some(shared) => Arc::clone(shared),
            None => {
                let computed = Arc::new(forward_ladder(automaton, qubit, swaps, ctx));
                cache.insert(qubit, Arc::clone(&computed));
                computed
            }
        }
    };
    let mut state = LadderState::clone(&forward);
    state.subtree_copy(qubit, bit);
    let mut ladder = Ladder::new(ctx.opts, state.transition_count());
    // Backward pass `k` restores the displaced layer sitting directly
    // above the qubit's current position: variable `bottom`, then
    // `bottom − 1`, …, down to `qubit + 1`.
    for k in 1..=swaps {
        // Between passes is the in-gate interrupt checkpoint: a ladder that
        // outgrows its budget abandons the remaining passes (the partial
        // state is discarded by the interrupted caller).
        if ctx.checkpoint(state.num_states as usize, state.transition_count()) {
            return state.into_automaton();
        }
        if ladder.maybe_reduce(&mut state) {
            ctx.observe_states(state.num_states as usize);
        }
        ladder.backward_pass(&mut state, qubit, bottom - k + 1);
        ctx.observe_transitions(state.transition_count());
    }
    // One final check so the binary combination downstream works on a
    // reduced operand rather than the last pass's raw output.  The states
    // watermark is only recorded at post-reduction snapshots, where the
    // allocation count is the *live* count — between passes it also
    // includes states the swaps orphaned (the next trim drops them), which
    // would overstate the peak the states column reports.
    if ladder.maybe_reduce(&mut state) {
        ctx.observe_states(state.num_states as usize);
    }
    state.into_automaton()
}

/// Runs the complete forward half of a projection ladder (shared between
/// the two projections of one formula via the evaluation context's cache).
fn forward_ladder(
    automaton: &TreeAutomaton,
    qubit: u32,
    swaps: u32,
    ctx: &EvalCtx<'_>,
) -> LadderState {
    let mut state = LadderState::from_automaton(automaton);
    let mut ladder = Ladder::new(ctx.opts, state.transition_count());
    // Forward pass `k` swaps the qubit layer below the layer at variable
    // `qubit + k`.
    for k in 1..=swaps {
        // Same per-pass interrupt checkpoint as the backward ladder.
        if ctx.checkpoint(state.num_states as usize, state.transition_count()) {
            return state;
        }
        if k > 1 && ladder.maybe_reduce(&mut state) {
            ctx.observe_states(state.num_states as usize);
        }
        ladder.forward_pass(&mut state, qubit, qubit + k);
        ctx.observe_transitions(state.transition_count());
    }
    // Reduce the shared result once if it outgrew the ladder, instead of
    // letting both consumers clone the raw output.
    if ladder.maybe_reduce(&mut state) {
        ctx.observe_states(state.num_states as usize);
    }
    state
}

/// Reference implementation of [`project`]: the unfused ladder of
/// per-pass-deduped [`forward_swap`]/[`backward_swap`] rebuilds, with no
/// in-ladder reduction and no cross-pass interning.  Retained as the oracle
/// the property tests compare the fused pipeline against; not used on the
/// hot path.
#[doc(hidden)]
pub fn project_reference(automaton: &TreeAutomaton, qubit: u32, bit: bool) -> TreeAutomaton {
    let bottom = automaton.num_vars - 1;
    if qubit == bottom {
        let mut result = automaton.clone();
        subtree_copy_in_place(&mut result, qubit, bit);
        return result;
    }
    let swaps = bottom - qubit;
    let mut current = forward_swap(automaton, qubit);
    for _ in 1..swaps {
        current = forward_swap(&current, qubit);
    }
    subtree_copy_in_place(&mut current, qubit, bit);
    for _ in 0..swaps {
        current = backward_swap(&current, qubit);
    }
    current
}

/// The subtree-copying procedure (Algorithm 6), only valid at the layer just
/// above the leaves (Lemma 6.8).
pub fn subtree_copy(automaton: &TreeAutomaton, qubit: u32, bit: bool) -> TreeAutomaton {
    let mut result = automaton.clone();
    subtree_copy_in_place(&mut result, qubit, bit);
    result
}

/// In-place variant of [`subtree_copy`].
pub fn subtree_copy_in_place(automaton: &mut TreeAutomaton, qubit: u32, bit: bool) {
    for transition in automaton.internal.iter_mut() {
        if transition.symbol.var == qubit {
            let copied = if bit {
                transition.right
            } else {
                transition.left
            };
            transition.left = copied;
            transition.right = copied;
        }
    }
    automaton.invalidate_index();
}

/// Per-pass singleton-state interner: maps a `(symbol, left, right)` key
/// to a state whose *only* outgoing transition is `symbol(left, right)`,
/// allocating a fresh state (and queueing its defining transition) on a
/// miss.
///
/// One interner lives exactly as long as one swap pass.  A whole-ladder
/// interner was implemented and proven inert for this pass structure:
/// every forward-pass probe uses the moving qubit's variable, and each
/// surviving entry with that variable is the parent of a qubit-layer
/// transition the next pass rewrites (so it would have to be invalidated
/// anyway); every backward-pass probe uses the restored layer's variable,
/// which strictly decreases across the ladder and never matches an
/// earlier pass's insertions.  Per-pass interning is therefore
/// behaviourally identical and carries no invalidation machinery.
fn intern_pass_state(
    interned: &mut HashMap<(InternalSymbol, StateId, StateId), StateId>,
    next_state: &mut u32,
    symbol: InternalSymbol,
    left: StateId,
    right: StateId,
    new_transitions: &mut Vec<InternalTransition>,
) -> StateId {
    let key = (symbol, left, right);
    if let Some(&state) = interned.get(&key) {
        return state;
    }
    let state = StateId::new(*next_state);
    *next_state += 1;
    interned.insert(key, state);
    new_transitions.push(InternalTransition {
        parent: state,
        symbol,
        left,
        right,
    });
    state
}

/// The working automaton of one projection ladder, bucketed by variable.
///
/// A swap pass only rewrites two layers — the moving qubit layer and the
/// fixed layer it swaps past — while every other layer is carried verbatim.
/// Keeping the transitions bucketed by `symbol.var` turns each pass from
/// O(whole automaton) into O(active layers): untouched buckets are never
/// scanned, hashed or copied.  Every automaton in the pipeline is layered
/// by construction (full binary trees of uniform height), which is what
/// makes the bucketing lossless.
#[derive(Clone)]
struct LadderState {
    num_vars: u32,
    num_states: u32,
    roots: std::collections::BTreeSet<StateId>,
    /// Internal transitions, bucketed by `symbol.var`.
    layers: Vec<Vec<InternalTransition>>,
    /// Leaf transitions; swap passes never touch them.
    leaves: Vec<LeafTransition>,
}

impl LadderState {
    fn from_automaton(automaton: &TreeAutomaton) -> Self {
        let mut layers = vec![Vec::new(); automaton.num_vars as usize];
        for t in &automaton.internal {
            layers[t.symbol.var as usize].push(t.clone());
        }
        LadderState {
            num_vars: automaton.num_vars,
            num_states: automaton.num_states,
            roots: automaton.roots.clone(),
            layers,
            leaves: automaton.leaves.clone(),
        }
    }

    fn into_automaton(self) -> TreeAutomaton {
        let mut result = TreeAutomaton::new(self.num_vars);
        result.num_states = self.num_states;
        result.roots = self.roots;
        result.leaves = self.leaves;
        result.internal = self.layers.into_iter().flatten().collect();
        result
    }

    fn transition_count(&self) -> usize {
        self.layers.iter().map(Vec::len).sum::<usize>() + self.leaves.len()
    }

    /// [`subtree_copy_in_place`] on the bucketed representation: only the
    /// qubit layer is visited.
    fn subtree_copy(&mut self, qubit: u32, bit: bool) {
        for transition in &mut self.layers[qubit as usize] {
            let copied = if bit {
                transition.right
            } else {
                transition.left
            };
            transition.left = copied;
            transition.right = copied;
        }
    }
}

/// One projection's fused swap ladder: the in-ladder reduction policy and
/// its growth baseline.
struct Ladder<'o> {
    opts: &'o CompositionOptions,
    /// Transition count at the ladder entry, updated to the reduced count
    /// after every in-ladder reduction.
    baseline: usize,
}

impl<'o> Ladder<'o> {
    fn new(opts: &'o CompositionOptions, entry_transitions: usize) -> Self {
        Ladder {
            opts,
            baseline: entry_transitions.max(1),
        }
    }

    /// Reduces the working automaton (trim + tag-preserving successor
    /// merging — tags live in the symbols, so states only merge when their
    /// signatures agree on tags) if it outgrew the configured factor over
    /// the baseline.  Returns `true` when a reduction actually ran, so
    /// callers can record the post-reduction live size.
    fn maybe_reduce(&mut self, state: &mut LadderState) -> bool {
        let Some(factor) = self.opts.ladder_growth_factor else {
            return false;
        };
        if state.transition_count() <= (factor as usize).max(1) * self.baseline {
            return false;
        }
        let placeholder = LadderState {
            num_vars: 0,
            num_states: 0,
            roots: std::collections::BTreeSet::new(),
            layers: Vec::new(),
            leaves: Vec::new(),
        };
        let flat = std::mem::replace(state, placeholder).into_automaton();
        let reduced = flat.reduce();
        *state = LadderState::from_automaton(&reduced);
        self.baseline = state.transition_count().max(1);
        true
    }

    /// One forward variable-order swap pass (Algorithm 7): pushes the
    /// `x_qubit` layer below the `child_var` layer, remembering the
    /// displaced layer's tags in a [`Tag::Pair`].  Touches exactly the two
    /// active buckets.
    fn forward_pass(&mut self, state: &mut LadderState, qubit: u32, child_var: u32) {
        let uppers = std::mem::take(&mut state.layers[qubit as usize]);
        let children = std::mem::take(&mut state.layers[child_var as usize]);
        let mut interned: HashMap<(InternalSymbol, StateId, StateId), StateId> = HashMap::new();

        // Child adjacency within the active child layer.
        let mut by_parent: HashMap<StateId, Vec<u32>> = HashMap::with_capacity(children.len());
        for (position, t) in children.iter().enumerate() {
            by_parent.entry(t.parent).or_default().push(position as u32);
        }

        let mut removed_child = vec![false; children.len()];
        let mut new_qubit: Vec<InternalTransition> = Vec::new();
        let mut new_pairs: Vec<InternalTransition> = Vec::new();
        let mut kept_uppers: Vec<InternalTransition> = Vec::new();

        for upper in uppers {
            let (Some(left_children), Some(right_children)) =
                (by_parent.get(&upper.left), by_parent.get(&upper.right))
            else {
                kept_uppers.push(upper);
                continue;
            };
            for &li in left_children {
                for &ri in right_children {
                    let left_t = &children[li as usize];
                    let right_t = &children[ri as usize];
                    removed_child[li as usize] = true;
                    removed_child[ri as usize] = true;
                    let tag_left = single_tag(left_t.symbol.tag);
                    let tag_right = single_tag(right_t.symbol.tag);
                    let new_upper_symbol = InternalSymbol::new(left_t.symbol.var)
                        .with_tag(Tag::Pair(tag_left, tag_right));
                    // q'_0 generates x_t^h(q00, q10); q'_1 generates
                    // x_t^h(q01, q11).
                    let lower_symbol = upper.symbol;
                    let q0 = intern_pass_state(
                        &mut interned,
                        &mut state.num_states,
                        lower_symbol,
                        left_t.left,
                        right_t.left,
                        &mut new_qubit,
                    );
                    let q1 = intern_pass_state(
                        &mut interned,
                        &mut state.num_states,
                        lower_symbol,
                        left_t.right,
                        right_t.right,
                        &mut new_qubit,
                    );
                    new_pairs.push(InternalTransition {
                        parent: upper.parent,
                        symbol: new_upper_symbol,
                        left: q0,
                        right: q1,
                    });
                }
            }
        }

        assemble_layer(
            &mut state.layers[qubit as usize],
            kept_uppers,
            None,
            new_qubit,
        );
        assemble_layer(
            &mut state.layers[child_var as usize],
            children,
            Some(&removed_child),
            new_pairs,
        );
    }

    /// One backward variable-order swap pass (Algorithm 8): restores the
    /// displaced `upper_var` layer (remembered in [`Tag::Pair`] tags)
    /// sitting directly above the qubit\u2019s current position.
    fn backward_pass(&mut self, state: &mut LadderState, qubit: u32, upper_var: u32) {
        let uppers = std::mem::take(&mut state.layers[upper_var as usize]);
        let children = std::mem::take(&mut state.layers[qubit as usize]);
        let mut interned: HashMap<(InternalSymbol, StateId, StateId), StateId> = HashMap::new();

        // A matching pair needs the left and right child transitions to
        // carry the *same* tagged symbol, so pairs are found by hash join
        // on (parent, symbol) instead of a quadratic |left| × |right| scan.
        let mut by_parent: HashMap<StateId, Vec<u32>> = HashMap::with_capacity(children.len());
        let mut by_parent_symbol: HashMap<(StateId, InternalSymbol), Vec<u32>> =
            HashMap::with_capacity(children.len());
        for (position, t) in children.iter().enumerate() {
            by_parent.entry(t.parent).or_default().push(position as u32);
            by_parent_symbol
                .entry((t.parent, t.symbol))
                .or_default()
                .push(position as u32);
        }

        let mut removed_child = vec![false; children.len()];
        let mut new_restored: Vec<InternalTransition> = Vec::new();
        let mut new_lower: Vec<InternalTransition> = Vec::new();
        let mut kept_uppers: Vec<InternalTransition> = Vec::new();

        for upper in uppers {
            // Only rewrite the Pair-tagged transitions; restored (Single)
            // transitions of this variable are carried.
            let (tag_left, tag_right) = match upper.symbol.tag {
                Tag::Pair(i, j) => (i, j),
                _ => {
                    kept_uppers.push(upper);
                    continue;
                }
            };
            let mut handled = false;
            if let Some(left_children) = by_parent.get(&upper.left) {
                for &li in left_children {
                    let left_t = &children[li as usize];
                    let Some(right_matches) = by_parent_symbol.get(&(upper.right, left_t.symbol))
                    else {
                        continue;
                    };
                    for &ri in right_matches {
                        let left_t = &children[li as usize];
                        let right_t = &children[ri as usize];
                        handled = true;
                        removed_child[li as usize] = true;
                        removed_child[ri as usize] = true;
                        let restored_left_symbol =
                            InternalSymbol::new(upper.symbol.var).with_tag(Tag::Single(tag_left));
                        let restored_right_symbol =
                            InternalSymbol::new(upper.symbol.var).with_tag(Tag::Single(tag_right));
                        let lower_symbol = left_t.symbol;
                        // q''_0 generates x_l^i(q00, q01); q''_1 generates
                        // x_l^j(q10, q11).
                        let q0 = intern_pass_state(
                            &mut interned,
                            &mut state.num_states,
                            restored_left_symbol,
                            left_t.left,
                            right_t.left,
                            &mut new_restored,
                        );
                        let q1 = intern_pass_state(
                            &mut interned,
                            &mut state.num_states,
                            restored_right_symbol,
                            left_t.right,
                            right_t.right,
                            &mut new_restored,
                        );
                        new_lower.push(InternalTransition {
                            parent: upper.parent,
                            symbol: lower_symbol,
                            left: q0,
                            right: q1,
                        });
                    }
                }
            }
            if !handled {
                kept_uppers.push(upper);
            }
        }

        assemble_layer(
            &mut state.layers[upper_var as usize],
            kept_uppers,
            None,
            new_restored,
        );
        assemble_layer(
            &mut state.layers[qubit as usize],
            children,
            Some(&removed_child),
            new_lower,
        );
    }
}

/// Rebuilds one active layer bucket from its carried transitions (minus the
/// removed ones) plus the pass's new transitions, deduped with an
/// integer-key set as they are emitted.  Untouched buckets are never
/// rebuilt, and leaves are never visited — the bigint-cloning leaf dedup of
/// [`TreeAutomaton::dedup_transitions`] is skipped entirely.
fn assemble_layer(
    bucket: &mut Vec<InternalTransition>,
    carried: Vec<InternalTransition>,
    removed: Option<&[bool]>,
    new_transitions: Vec<InternalTransition>,
) {
    let mut seen: HashSet<(StateId, InternalSymbol, StateId, StateId)> =
        HashSet::with_capacity(carried.len() + new_transitions.len());
    bucket.reserve(carried.len() + new_transitions.len());
    for (position, t) in carried.into_iter().enumerate() {
        if removed.is_some_and(|flags| flags[position]) {
            continue;
        }
        if seen.insert((t.parent, t.symbol, t.left, t.right)) {
            bucket.push(t);
        }
    }
    for t in new_transitions {
        if seen.insert((t.parent, t.symbol, t.left, t.right)) {
            bucket.push(t);
        }
    }
}

/// The forward variable-order swapping procedure (Algorithm 7): pushes the
/// `x_t` layer one level down, remembering the tags of the displaced layer
/// in a [`Tag::Pair`] so that [`backward_swap`] can restore them.
///
/// This is the *reference* single-pass implementation ([`project_reference`]
/// chains it); the hot path runs the fused equivalent inside
/// [`project_with`].
pub fn forward_swap(automaton: &TreeAutomaton, qubit: u32) -> TreeAutomaton {
    let mut result = TreeAutomaton::new(automaton.num_vars);
    result.num_states = automaton.num_states;
    result.roots = automaton.roots.clone();
    result.leaves = automaton.leaves.clone();

    // Index the child transitions by parent state.
    let mut by_parent: HashMap<StateId, Vec<usize>> = HashMap::new();
    for (index, transition) in automaton.internal.iter().enumerate() {
        by_parent.entry(transition.parent).or_default().push(index);
    }

    // States interned by the content of their single new transition.
    let mut interned: HashMap<(InternalSymbol, StateId, StateId), StateId> = HashMap::new();
    let mut removed: Vec<bool> = vec![false; automaton.internal.len()];
    let mut new_transitions: Vec<(StateId, InternalSymbol, StateId, StateId)> = Vec::new();

    for (upper_index, upper) in automaton.internal.iter().enumerate() {
        if upper.symbol.var != qubit {
            continue;
        }
        let left_children = by_parent.get(&upper.left).cloned().unwrap_or_default();
        let right_children = by_parent.get(&upper.right).cloned().unwrap_or_default();
        if left_children.is_empty() || right_children.is_empty() {
            continue;
        }
        removed[upper_index] = true;
        for &li in &left_children {
            for &ri in &right_children {
                let left_t = &automaton.internal[li];
                let right_t = &automaton.internal[ri];
                if left_t.symbol.var != right_t.symbol.var {
                    continue;
                }
                removed[li] = true;
                removed[ri] = true;
                let tag_left = single_tag(left_t.symbol.tag);
                let tag_right = single_tag(right_t.symbol.tag);
                let new_upper_symbol =
                    InternalSymbol::new(left_t.symbol.var).with_tag(Tag::Pair(tag_left, tag_right));
                // q'_0 generates x_t^h(q00, q10); q'_1 generates x_t^h(q01, q11).
                let lower_symbol = upper.symbol;
                let q0 = intern_state(
                    &mut result,
                    &mut interned,
                    lower_symbol,
                    left_t.left,
                    right_t.left,
                    &mut new_transitions,
                );
                let q1 = intern_state(
                    &mut result,
                    &mut interned,
                    lower_symbol,
                    left_t.right,
                    right_t.right,
                    &mut new_transitions,
                );
                new_transitions.push((upper.parent, new_upper_symbol, q0, q1));
            }
        }
    }

    for (index, transition) in automaton.internal.iter().enumerate() {
        if !removed[index] {
            result.internal.push(transition.clone());
        }
    }
    for (parent, symbol, left, right) in new_transitions {
        result.add_internal(parent, symbol, left, right);
    }
    result.dedup_transitions();
    result
}

/// The backward variable-order swapping procedure (Algorithm 8): restores a
/// layer displaced by [`forward_swap`], using the remembered tag pair.
///
/// Reference implementation, like [`forward_swap`].
pub fn backward_swap(automaton: &TreeAutomaton, qubit: u32) -> TreeAutomaton {
    let mut result = TreeAutomaton::new(automaton.num_vars);
    result.num_states = automaton.num_states;
    result.roots = automaton.roots.clone();
    result.leaves = automaton.leaves.clone();

    let mut by_parent: HashMap<StateId, Vec<usize>> = HashMap::new();
    for (index, transition) in automaton.internal.iter().enumerate() {
        by_parent.entry(transition.parent).or_default().push(index);
    }

    let mut interned: HashMap<(InternalSymbol, StateId, StateId), StateId> = HashMap::new();
    let mut removed: Vec<bool> = vec![false; automaton.internal.len()];
    let mut new_transitions: Vec<(StateId, InternalSymbol, StateId, StateId)> = Vec::new();

    for (upper_index, upper) in automaton.internal.iter().enumerate() {
        // Only rewrite the Pair-tagged layer sitting directly above x_qubit.
        let (tag_left, tag_right) = match upper.symbol.tag {
            Tag::Pair(i, j) => (i, j),
            _ => continue,
        };
        let left_children = by_parent.get(&upper.left).cloned().unwrap_or_default();
        let right_children = by_parent.get(&upper.right).cloned().unwrap_or_default();
        let mut handled = false;
        for &li in &left_children {
            for &ri in &right_children {
                let left_t = &automaton.internal[li];
                let right_t = &automaton.internal[ri];
                if left_t.symbol.var != qubit || right_t.symbol.var != qubit {
                    continue;
                }
                if left_t.symbol != right_t.symbol {
                    continue;
                }
                handled = true;
                removed[li] = true;
                removed[ri] = true;
                let restored_left_symbol =
                    InternalSymbol::new(upper.symbol.var).with_tag(Tag::Single(tag_left));
                let restored_right_symbol =
                    InternalSymbol::new(upper.symbol.var).with_tag(Tag::Single(tag_right));
                let lower_symbol = left_t.symbol;
                // q''_0 generates x_l^i(q00, q01); q''_1 generates x_l^j(q10, q11).
                let q0 = intern_state(
                    &mut result,
                    &mut interned,
                    restored_left_symbol,
                    left_t.left,
                    right_t.left,
                    &mut new_transitions,
                );
                let q1 = intern_state(
                    &mut result,
                    &mut interned,
                    restored_right_symbol,
                    left_t.right,
                    right_t.right,
                    &mut new_transitions,
                );
                new_transitions.push((upper.parent, lower_symbol, q0, q1));
            }
        }
        if handled {
            removed[upper_index] = true;
        }
    }

    for (index, transition) in automaton.internal.iter().enumerate() {
        if !removed[index] {
            result.internal.push(transition.clone());
        }
    }
    for (parent, symbol, left, right) in new_transitions {
        result.add_internal(parent, symbol, left, right);
    }
    result.dedup_transitions();
    result
}

/// Allocates (or reuses) a state whose single outgoing transition is
/// `symbol(left, right)`.
fn intern_state(
    result: &mut TreeAutomaton,
    interned: &mut HashMap<(InternalSymbol, StateId, StateId), StateId>,
    symbol: InternalSymbol,
    left: StateId,
    right: StateId,
    new_transitions: &mut Vec<(StateId, InternalSymbol, StateId, StateId)>,
) -> StateId {
    if let Some(&state) = interned.get(&(symbol, left, right)) {
        return state;
    }
    let state = result.add_state();
    interned.insert((symbol, left, right), state);
    new_transitions.push((state, symbol, left, right));
    state
}

fn single_tag(tag: Tag) -> u64 {
    match tag {
        Tag::Single(t) => t,
        Tag::None => 0,
        Tag::Pair(i, _) => i,
    }
}

/// The binary operation (Algorithm 9): a product construction that combines
/// only trees with the same tag (guaranteed by matching the uniquely tagged
/// symbols) and adds/subtracts their leaf amplitudes.
pub fn binary_op(a1: &TreeAutomaton, a2: &TreeAutomaton, sign: CombineSign) -> TreeAutomaton {
    let mut result = TreeAutomaton::new(a1.num_vars);
    let mut pair_state: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut worklist: Vec<(StateId, StateId)> = Vec::new();

    let get_state = |result: &mut TreeAutomaton,
                     worklist: &mut Vec<(StateId, StateId)>,
                     pair_state: &mut HashMap<(StateId, StateId), StateId>,
                     q1: StateId,
                     q2: StateId| {
        *pair_state.entry((q1, q2)).or_insert_with(|| {
            worklist.push((q1, q2));
            result.add_state()
        })
    };

    // Root pairs.
    for &r1 in &a1.roots {
        for &r2 in &a2.roots {
            let state = get_state(&mut result, &mut worklist, &mut pair_state, r1, r2);
            result.add_root(state);
        }
    }

    // Adjacency (parent- and leaf-indexed) for both sides.
    let index1 = a1.index();
    let index2 = a2.index();

    while let Some((q1, q2)) = worklist.pop() {
        let parent = pair_state[&(q1, q2)];
        // Internal transitions with matching (tagged) symbols.
        for &i1 in index1.internal_of(q1) {
            for &i2 in index2.internal_of(q2) {
                let t1 = &a1.internal[i1 as usize];
                let t2 = &a2.internal[i2 as usize];
                if t1.symbol != t2.symbol {
                    continue;
                }
                let left = get_state(
                    &mut result,
                    &mut worklist,
                    &mut pair_state,
                    t1.left,
                    t2.left,
                );
                let right = get_state(
                    &mut result,
                    &mut worklist,
                    &mut pair_state,
                    t1.right,
                    t2.right,
                );
                result.add_internal(parent, t1.symbol, left, right);
            }
        }
        // Leaf combination — pure id arithmetic: the sum/difference of two
        // interned amplitudes is memoised process-wide, so repeated leaf
        // products across gates of the same circuit never redo the bigint
        // work (or clone a single coefficient).
        let v1 = index1
            .leaves_of(q1)
            .first()
            .map(|&i| a1.leaves[i as usize].amp);
        let v2 = index2
            .leaves_of(q2)
            .first()
            .map(|&i| a2.leaves[i as usize].amp);
        if let (Some(v1), Some(v2)) = (v1, v2) {
            let op = match sign {
                CombineSign::Plus => intern::LeafOp::Add,
                CombineSign::Minus => intern::LeafOp::Sub,
            };
            result.add_leaf_id(parent, intern::combine(op, v1, v2));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::update_formula;
    use autoq_amplitude::Algebraic;
    use autoq_circuit::Gate;
    use autoq_treeaut::{equivalence, Tree};

    fn singleton(tree: &Tree) -> TreeAutomaton {
        TreeAutomaton::from_tree(tree)
    }

    fn state_of(automaton: &TreeAutomaton) -> Vec<std::collections::BTreeMap<u128, Algebraic>> {
        automaton
            .enumerate(64)
            .iter()
            .map(Tree::to_amplitude_map)
            .collect()
    }

    #[test]
    fn tagging_gives_unique_tags() {
        let automaton = TreeAutomaton::from_trees(
            2,
            &[
                Tree::basis_state(2, 0),
                Tree::basis_state(2, 1),
                Tree::basis_state(2, 3),
            ],
        );
        let tagged = tag(&automaton);
        let mut tags: Vec<_> = tagged.internal.iter().map(|t| t.symbol.tag).collect();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), tagged.internal.len(), "tags must be unique");
        assert_eq!(tagged.untagged().internal.len(), automaton.internal.len());
    }

    #[test]
    fn restriction_zeroes_one_branch() {
        // B_{x_0}·T on |11⟩ keeps it; B̄_{x_0}·T zeroes it.
        let tree = Tree::basis_state(2, 0b11);
        let tagged = tag(&singleton(&tree));
        let keep = restrict(&tagged, 0, true).untagged().reduce();
        let kill = restrict(&tagged, 0, false).untagged().reduce();
        assert_eq!(state_of(&keep), vec![tree.to_amplitude_map()]);
        let killed = state_of(&kill);
        assert_eq!(killed.len(), 1);
        assert!(killed[0].is_empty(), "all amplitudes must be zero");
    }

    #[test]
    fn restriction_on_an_unmentioned_qubit_is_the_identity() {
        // An automaton with no transition on qubit 1 (empty language after
        // trimming): restriction must leave it untouched instead of
        // importing a zeroed copy.
        let mut automaton = TreeAutomaton::new(2);
        let leaf = automaton.leaf_state(&Algebraic::one());
        let root = automaton.add_state();
        automaton.add_root(root);
        automaton.add_internal(root, InternalSymbol::new(0), leaf, leaf);
        let states_before = automaton.state_count();
        let transitions_before = automaton.transition_count();
        restrict_in_place(&mut automaton, 1, true);
        assert_eq!(automaton.state_count(), states_before);
        assert_eq!(automaton.transition_count(), transitions_before);
    }

    #[test]
    fn multiplication_rewrites_leaves() {
        let tree = Tree::basis_state(1, 1);
        let tagged = tag(&singleton(&tree));
        let scaled = multiply(&tagged, ScaleFactor::OmegaPow(2)).untagged();
        let states = state_of(&scaled);
        assert_eq!(states[0][&1], Algebraic::i());
        let halved = multiply(&tagged, ScaleFactor::InvSqrt2).untagged();
        assert_eq!(state_of(&halved)[0][&1], Algebraic::one_over_sqrt2());
        let negated = multiply(&tagged, ScaleFactor::Neg).untagged();
        assert_eq!(state_of(&negated)[0][&1], -&Algebraic::one());
    }

    #[test]
    fn projection_at_the_bottom_layer() {
        // T on 1 qubit: T_{x_0} copies the |1⟩ amplitude everywhere.
        let tree = Tree::from_fn(1, |b| {
            if b == 0 {
                Algebraic::one()
            } else {
                Algebraic::i()
            }
        });
        let tagged = tag(&singleton(&tree));
        let projected = project(&tagged, 0, true).untagged();
        let states = state_of(&projected);
        assert_eq!(states.len(), 1);
        assert_eq!(states[0][&0], Algebraic::i());
        assert_eq!(states[0][&1], Algebraic::i());
    }

    #[test]
    fn projection_above_the_bottom_layer_uses_swaps() {
        // 2 qubits: T(b0 b1) = b0*2 + b1 as amplitude (all distinct).
        let tree = Tree::from_fn(2, |b| Algebraic::from_int(b as i64 + 1));
        let tagged = tag(&singleton(&tree));
        // T_{x̄_0}: fix qubit 0 to 0 → amplitudes (1, 2, 1, 2).
        let projected = project(&tagged, 0, false).untagged().reduce();
        let states = state_of(&projected);
        assert_eq!(states.len(), 1);
        assert_eq!(states[0][&0b00], Algebraic::from_int(1));
        assert_eq!(states[0][&0b01], Algebraic::from_int(2));
        assert_eq!(states[0][&0b10], Algebraic::from_int(1));
        assert_eq!(states[0][&0b11], Algebraic::from_int(2));
        // T_{x_0}: fix qubit 0 to 1 → amplitudes (3, 4, 3, 4).
        let projected = project(&tagged, 0, true).untagged().reduce();
        let states = state_of(&projected);
        assert_eq!(states[0][&0b00], Algebraic::from_int(3));
        assert_eq!(states[0][&0b01], Algebraic::from_int(4));
    }

    #[test]
    fn fused_projection_matches_the_reference_ladder() {
        // Multi-tree tagged automaton, every qubit/bit at 3 qubits, with the
        // in-ladder reduction forced on every pass (growth factor 1).
        let trees = vec![
            Tree::from_fn(3, |b| Algebraic::from_int((b % 3) as i64)),
            Tree::basis_state(3, 5),
            Tree::basis_state(3, 2),
        ];
        let tagged = tag(&TreeAutomaton::from_trees(3, &trees));
        let opts = CompositionOptions {
            ladder_growth_factor: Some(1),
            eval_threads: 1,
        };
        for qubit in 0..3 {
            for bit in [false, true] {
                let fused = project_with(&tagged, qubit, bit, &opts);
                let reference = project_reference(&tagged, qubit, bit);
                assert!(
                    equivalence(&fused, &reference).holds(),
                    "fused projection diverged at qubit {qubit}, bit {bit}"
                );
            }
        }
    }

    #[test]
    fn forward_then_backward_swap_is_identity_on_the_language() {
        let trees = vec![
            Tree::from_fn(3, |b| Algebraic::from_int((b % 3) as i64)),
            Tree::basis_state(3, 5),
        ];
        let automaton = tag(&TreeAutomaton::from_trees(3, &trees));
        let swapped = forward_swap(&automaton, 1);
        let restored = backward_swap(&swapped, 1);
        assert!(equivalence(&automaton.untagged(), &restored.untagged()).holds());
    }

    #[test]
    fn binary_op_adds_amplitudes_of_matching_trees() {
        let tree = Tree::from_fn(1, |b| {
            if b == 0 {
                Algebraic::one()
            } else {
                Algebraic::i()
            }
        });
        let tagged = tag(&singleton(&tree));
        let doubled = binary_op(&tagged, &tagged, CombineSign::Plus)
            .untagged()
            .reduce();
        let states = state_of(&doubled);
        assert_eq!(states.len(), 1);
        assert_eq!(states[0][&0], Algebraic::from_int(2));
        let cancelled = binary_op(&tagged, &tagged, CombineSign::Minus)
            .untagged()
            .reduce();
        assert!(state_of(&cancelled)[0].is_empty());
    }

    #[test]
    fn binary_op_does_not_mix_distinct_trees() {
        // Two different basis states in one automaton: the combination must
        // pair each tree with itself, not cross-combine (the paper's
        // motivation for tagging).
        let automaton =
            TreeAutomaton::from_trees(2, &[Tree::basis_state(2, 0), Tree::basis_state(2, 3)]);
        let tagged = tag(&automaton);
        let doubled = binary_op(&tagged, &tagged, CombineSign::Plus)
            .untagged()
            .reduce();
        let states = state_of(&doubled);
        assert_eq!(states.len(), 2);
        for map in states {
            assert_eq!(
                map.len(),
                1,
                "each combined tree keeps a single non-zero amplitude"
            );
            assert_eq!(map.values().next().unwrap(), &Algebraic::from_int(2));
        }
    }

    #[test]
    fn hadamard_formula_produces_the_plus_state() {
        let formula = update_formula(&Gate::H(0)).unwrap();
        let automaton = singleton(&Tree::basis_state(1, 0));
        let result = apply_formula(&automaton, &formula).reduce();
        let states = state_of(&result);
        assert_eq!(states.len(), 1);
        assert_eq!(states[0][&0], Algebraic::one_over_sqrt2());
        assert_eq!(states[0][&1], Algebraic::one_over_sqrt2());
    }

    #[test]
    fn parallel_and_sequential_evaluation_agree() {
        // The same H application with a 1-thread and a 4-thread budget must
        // produce identical automata (term evaluation is deterministic; the
        // threads only change *where* terms are computed).
        let formula = update_formula(&Gate::H(0)).unwrap();
        let automaton = TreeAutomaton::from_trees(
            3,
            &[Tree::basis_state(3, 0b000), Tree::basis_state(3, 0b101)],
        );
        let mut sequential = automaton.clone();
        let mut parallel = automaton.clone();
        let seq_opts = CompositionOptions {
            eval_threads: 1,
            ..CompositionOptions::default()
        };
        let par_opts = CompositionOptions {
            eval_threads: 4,
            ..CompositionOptions::default()
        };
        let seq_peak = apply_formula_in_place_with(&mut sequential, &formula, &seq_opts);
        let par_peak = apply_formula_in_place_with(&mut parallel, &formula, &par_opts);
        assert_eq!(sequential, parallel);
        assert_eq!(seq_peak, par_peak);
        assert!(
            seq_peak.states > 0 && seq_peak.transitions > 0,
            "formula evaluation must observe a peak"
        );
    }

    #[test]
    fn cnot_formula_flips_conditionally_on_sets() {
        let formula = update_formula(&Gate::Cnot {
            control: 0,
            target: 1,
        })
        .unwrap();
        let automaton = TreeAutomaton::from_trees(
            2,
            &[
                Tree::basis_state(2, 0b00),
                Tree::basis_state(2, 0b10),
                Tree::basis_state(2, 0b11),
            ],
        );
        let result = apply_formula(&automaton, &formula).reduce();
        assert!(result.accepts(&Tree::basis_state(2, 0b00)));
        assert!(result.accepts(&Tree::basis_state(2, 0b11)));
        assert!(result.accepts(&Tree::basis_state(2, 0b10)));
        assert_eq!(result.enumerate(16).len(), 3);
    }
}
