//! Parallel **portfolio bug hunting**: a pool of worker threads drains a
//! queue of hunt jobs, and the first simulator-confirmed witness wins.
//!
//! The paper's Table 3 experiments hunt for bugs one mutated circuit at a
//! time.  With the sharded hash-cons arena (`autoq_treeaut::arena`) the tree
//! substrate no longer serialises concurrent interning on a single lock, so
//! independent hunts can genuinely run in parallel: [`HuntPool`] spawns `W`
//! workers over a shared job queue, each worker runs
//! [`BugHunter::hunt_cancellable`] on its claimed job, and as soon as one
//! worker's witness is confirmed by the exact simulator
//! ([`HuntReport::confirm_with_simulator`]) it raises the shared
//! [`CancelFlag`] — the other workers observe the flag between gates and
//! abandon their hunts mid-circuit.
//!
//! Workers that find a bug the simulator *cannot* confirm (superposition
//! witnesses with no basis-state preimage) do not cancel the pool; the
//! lowest-indexed such report is kept as a fallback answer in case no
//! confirmed winner appears.
//!
//! **Arena reclamation** is opt-in ([`HuntPool::with_reclaim`]): when
//! enabled, the pool captures the arena generation before hunting, pins the
//! epoch while workers run, and afterwards sweeps every tree node the hunts
//! interned except those of the returned witness.  This is what keeps a
//! 1000-hunt soak at a flat arena profile.  It is off by default because
//! reclamation is process-wide: only enable it when no *other* thread is
//! concurrently building trees it expects to keep (see
//! `docs/CONCURRENCY.md`).
//!
//! # Examples
//!
//! Hunt over a small portfolio of mutated circuits on two workers:
//!
//! ```
//! use autoq_circuit::generators::mc_toffoli;
//! use autoq_circuit::mutation::insert_gate;
//! use autoq_circuit::Gate;
//! use autoq_core::{Engine, HuntJob, HuntPool};
//!
//! let original = mc_toffoli(3);
//! let jobs: Vec<HuntJob> = (0..2)
//!     .map(|i| HuntJob {
//!         label: format!("mutant-{i}"),
//!         original: original.clone(),
//!         candidate: insert_gate(&original, Gate::X(4), 2 + i),
//!         seed: 0xC0FFEE + i as u64,
//!     })
//!     .collect();
//! let outcome = HuntPool::new(Engine::hybrid()).with_threads(2).run(&jobs);
//! let win = outcome.win.expect("an injected X gate is observable");
//! assert!(win.report.bug_found);
//! assert!(win.confirmed_input.is_some());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use autoq_circuit::Circuit;
use autoq_treeaut::arena;
use rand::SeedableRng;

use crate::{ApplyStats, BugHunter, CancelFlag, Engine, HuntReport, Interrupt, StopReason};

/// One unit of portfolio work: a pair of circuits to distinguish, plus the
/// RNG seed driving the hunt's input-set schedule (pinned per job so a
/// portfolio run is reproducible regardless of which worker claims it).
#[derive(Clone, Debug)]
pub struct HuntJob {
    /// Human-readable job name, reported back in [`PortfolioWin::label`].
    pub label: String,
    /// The reference circuit.
    pub original: Circuit,
    /// The allegedly equivalent candidate (e.g. a mutated optimisation).
    pub candidate: Circuit,
    /// Seed for the hunt's random input-set schedule.
    pub seed: u64,
}

/// The winning job of a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioWin {
    /// Index of the winning job in the slice passed to [`HuntPool::run`].
    pub job_index: usize,
    /// The winning job's label.
    pub label: String,
    /// The hunt report, including the witness tree.
    pub report: HuntReport,
    /// The simulator-confirmed distinguishing basis input, when confirmation
    /// succeeded (`None` for an unconfirmed fallback win).
    pub confirmed_input: Option<u128>,
}

/// The aggregate result of a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The winning bug report, if any job found one.  A simulator-confirmed
    /// win beats any unconfirmed one; among unconfirmed reports the lowest
    /// job index wins.
    pub win: Option<PortfolioWin>,
    /// Jobs whose hunts ran to completion (bug found or input space
    /// exhausted).
    pub hunts_completed: usize,
    /// Jobs abandoned mid-hunt when the cancel flag went up (or never
    /// claimed because the pool was already cancelled).
    pub hunts_cancelled: usize,
    /// Gate-application statistics merged across every worker.
    pub stats: ApplyStats,
    /// What the post-run arena sweep reclaimed, when
    /// [`HuntPool::with_reclaim`] was enabled and no foreign epoch pin
    /// blocked it.
    pub reclaim: Option<arena::ReclaimStats>,
    /// Why the run stopped early, when it did: the first budget/deadline
    /// exhaustion any worker observed (which cancels the rest of the
    /// portfolio), or [`StopReason::Cancelled`] when the caller's exterior
    /// interrupt was cancelled mid-run.  `None` for a portfolio that ran to
    /// completion or was stopped by its own confirmed winner.
    pub stopped: Option<StopReason>,
}

/// A fixed-width pool of portfolio hunt workers.  See the module docs for
/// the winner and reclamation policies.
#[derive(Clone, Debug)]
pub struct HuntPool {
    hunter: BugHunter,
    threads: usize,
    reclaim: bool,
}

impl HuntPool {
    /// Creates a single-threaded pool hunting with `engine` and the default
    /// iteration bound.  Use [`with_threads`](HuntPool::with_threads) to
    /// widen it and [`with_hunter`](HuntPool::with_hunter) to bound
    /// iterations.
    pub fn new(engine: Engine) -> Self {
        HuntPool {
            hunter: BugHunter::new(engine),
            threads: 1,
            reclaim: false,
        }
    }

    /// Replaces the underlying [`BugHunter`] (engine + iteration bound).
    pub fn with_hunter(mut self, hunter: BugHunter) -> Self {
        self.hunter = hunter;
        self
    }

    /// Sets the number of worker threads (clamped to at least 1).  Jobs are
    /// claimed from a shared queue, so any `threads ≤ jobs.len()` keeps all
    /// workers busy until the queue drains or a winner cancels the pool.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables the post-run arena sweep: tree nodes interned during the run
    /// are reclaimed, keeping only the returned witness.  **Process-wide**
    /// — enable only when no concurrent thread outside this pool is building
    /// trees it intends to keep (see `docs/CONCURRENCY.md`).
    pub fn with_reclaim(mut self, reclaim: bool) -> Self {
        self.reclaim = reclaim;
        self
    }

    /// Runs every job on the pool's workers and returns the aggregate
    /// outcome.  Blocks until all workers have stopped (drained the queue or
    /// acknowledged cancellation).
    pub fn run(&self, jobs: &[HuntJob]) -> PortfolioOutcome {
        self.run_with_interrupt(jobs, &Interrupt::new())
    }

    /// Like [`HuntPool::run`], but governed by an exterior [`Interrupt`]:
    /// its deadline and peak-size budgets apply to every worker's hunts,
    /// and its cancel flag is polled at job-claim boundaries.  The first
    /// exhaustion any worker observes stops the whole portfolio (the
    /// remaining jobs count as cancelled) and is reported in
    /// [`PortfolioOutcome::stopped`] — the pool degrades to "best answer
    /// within budget" instead of hanging on a blowing-up mutant.
    pub fn run_with_interrupt(&self, jobs: &[HuntJob], exterior: &Interrupt) -> PortfolioOutcome {
        let floor = arena::generation();
        let (mut outcome, winner, fallback) = {
            // The pin keeps a concurrent reclaimer (another pool with
            // reclamation enabled) from sweeping this run's fresh nodes.
            let _pin = arena::pin();
            self.run_pinned(jobs, exterior)
        };
        outcome.win = winner.or(fallback);
        if self.reclaim {
            let keep: Vec<arena::NodeId> = outcome
                .win
                .iter()
                .filter_map(|w| w.report.witness.as_ref())
                .map(|t| t.id())
                .collect();
            outcome.reclaim = arena::try_reclaim(floor, &keep).ok();
        }
        outcome
    }

    fn run_pinned(
        &self,
        jobs: &[HuntJob],
        exterior: &Interrupt,
    ) -> (PortfolioOutcome, Option<PortfolioWin>, Option<PortfolioWin>) {
        let cancel = CancelFlag::new();
        // Workers hunt under the exterior limits but the pool's own flag, so
        // a confirmed winner cancels siblings without touching the caller's
        // flag; the exterior flag itself is polled at claim boundaries.
        let job_interrupt = exterior.clone().with_flag(cancel.clone());
        let next_job = AtomicUsize::new(0);
        // First confirmed witness wins and cancels the pool; unconfirmed
        // reports compete by lowest job index without cancelling.
        let winner: Mutex<Option<PortfolioWin>> = Mutex::new(None);
        let fallback: Mutex<Option<PortfolioWin>> = Mutex::new(None);
        // First budget/deadline exhaustion (or exterior cancellation)
        // observed by any worker.
        let stopped: Mutex<Option<StopReason>> = Mutex::new(None);
        let record_stop = |reason: StopReason| {
            let mut slot = stopped.lock().unwrap_or_else(|p| p.into_inner());
            slot.get_or_insert(reason);
            cancel.cancel();
        };

        let worker = || -> (usize, usize, ApplyStats) {
            let mut completed = 0;
            let mut cancelled = 0;
            let mut stats = ApplyStats::default();
            loop {
                let index = next_job.fetch_add(1, Ordering::SeqCst);
                if index >= jobs.len() {
                    break;
                }
                if exterior.is_cancelled() {
                    record_stop(StopReason::Cancelled);
                }
                if cancel.is_cancelled() {
                    // Count only the job just claimed and keep draining the
                    // queue: each index is claimed exactly once, so the
                    // cancelled tally stays exact even when several workers
                    // observe the flag at the same time (a bulk
                    // `jobs.len() - index` here double-counts under races).
                    cancelled += 1;
                    continue;
                }
                let job = &jobs[index];
                let mut rng = rand::rngs::StdRng::seed_from_u64(job.seed);
                let report = match self.hunter.hunt_interruptible(
                    &job.original,
                    &job.candidate,
                    &mut rng,
                    &job_interrupt,
                ) {
                    Ok(report) => report,
                    Err(interrupted) => {
                        // Exhaustion stops the whole portfolio: the budget
                        // belongs to the run, not to one mutant.  A bare
                        // cancellation is the winner-found path and stops
                        // quietly.
                        if let StopReason::Exhausted { .. } = interrupted.reason {
                            record_stop(interrupted.reason);
                        }
                        stats = stats.merge(&interrupted.partial_stats);
                        cancelled += 1;
                        continue;
                    }
                };
                completed += 1;
                stats = stats.merge(&report.stats);
                if !report.bug_found {
                    continue;
                }
                let confirmed_input = report.confirm_with_simulator(&job.original, &job.candidate);
                let win = PortfolioWin {
                    job_index: index,
                    label: job.label.clone(),
                    report,
                    confirmed_input,
                };
                if win.confirmed_input.is_some() {
                    let mut slot = winner.lock().unwrap_or_else(|p| p.into_inner());
                    if slot.is_none() {
                        *slot = Some(win);
                        cancel.cancel();
                    }
                } else {
                    let mut slot = fallback.lock().unwrap_or_else(|p| p.into_inner());
                    if slot.as_ref().map_or(true, |held| held.job_index > index) {
                        *slot = Some(win);
                    }
                }
            }
            (completed, cancelled, stats)
        };

        let results: Vec<(usize, usize, ApplyStats)> = if self.threads == 1 {
            vec![worker()]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.threads).map(|_| scope.spawn(worker)).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("hunt worker panicked"))
                    .collect()
            })
        };

        let mut outcome = PortfolioOutcome {
            win: None,
            hunts_completed: 0,
            hunts_cancelled: 0,
            stats: ApplyStats::default(),
            reclaim: None,
            stopped: None,
        };
        for (completed, cancelled, stats) in results {
            outcome.hunts_completed += completed;
            outcome.hunts_cancelled += cancelled;
            outcome.stats = outcome.stats.merge(&stats);
        }
        outcome.stopped = stopped.into_inner().unwrap_or_else(|p| p.into_inner());
        let winner = winner.into_inner().unwrap_or_else(|p| p.into_inner());
        let fallback = fallback.into_inner().unwrap_or_else(|p| p.into_inner());
        (outcome, winner, fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoq_circuit::generators::mc_toffoli;
    use autoq_circuit::mutation::insert_gate;
    use autoq_circuit::Gate;

    fn mutant_jobs(count: usize) -> (Circuit, Vec<HuntJob>) {
        let original = mc_toffoli(3);
        let jobs = (0..count)
            .map(|i| HuntJob {
                label: format!("mutant-{i}"),
                original: original.clone(),
                candidate: insert_gate(&original, Gate::X(4), 1 + i),
                seed: 0x5EED_0000 + i as u64,
            })
            .collect();
        (original, jobs)
    }

    #[test]
    fn portfolio_finds_and_confirms_a_bug() {
        let (_, jobs) = mutant_jobs(3);
        for threads in [1, 4] {
            let outcome = HuntPool::new(Engine::hybrid())
                .with_threads(threads)
                .run(&jobs);
            let win = outcome.win.as_ref().expect("injected bug must be found");
            assert!(win.report.bug_found);
            assert!(win.confirmed_input.is_some());
            assert!(outcome.hunts_completed >= 1);
            assert!(outcome.stats.gates_applied > 0);
        }
    }

    #[test]
    fn equivalent_portfolio_completes_every_job() {
        let original = mc_toffoli(2);
        let jobs: Vec<HuntJob> = (0..3)
            .map(|i| HuntJob {
                label: format!("self-{i}"),
                original: original.clone(),
                candidate: original.clone(),
                seed: i as u64,
            })
            .collect();
        let outcome = HuntPool::new(Engine::hybrid())
            .with_hunter(BugHunter::new(Engine::hybrid()).with_max_iterations(2))
            .with_threads(2)
            .run(&jobs);
        assert!(outcome.win.is_none());
        assert_eq!(outcome.hunts_completed, 3);
        assert_eq!(outcome.hunts_cancelled, 0);
    }

    #[test]
    fn single_and_multi_threaded_runs_agree_on_the_confirmed_input() {
        // With one job the winner is deterministic, so thread count must not
        // change the confirmed distinguishing input.
        let (_, jobs) = mutant_jobs(1);
        let confirmed: Vec<Option<u128>> = [1usize, 2, 8]
            .into_iter()
            .map(|threads| {
                let outcome = HuntPool::new(Engine::hybrid())
                    .with_threads(threads)
                    .run(&jobs);
                outcome.win.expect("bug must be found").confirmed_input
            })
            .collect();
        assert!(confirmed[0].is_some());
        assert!(confirmed.iter().all(|c| *c == confirmed[0]));
    }
}
