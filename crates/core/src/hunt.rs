//! The incremental bug-hunting strategy of Section 7.2.
//!
//! To find a bug that distinguishes an original circuit from its (allegedly
//! equivalent) optimised version, the paper starts from a tree automaton
//! encoding a *single* basis state and gradually adds nondeterminism —
//! enlarging the input set one step at a time — re-running the analysis
//! after each step until the two circuits' output sets differ.  Small input
//! sets keep the automata small, so bugs that manifest on few inputs are
//! found cheaply; the input set only grows as far as necessary.

use autoq_circuit::Circuit;
use autoq_simulator::SparseState;
use autoq_treeaut::basis::{self, BasisIndex};
use autoq_treeaut::Tree;
use rand::Rng;

use crate::verify::check_circuit_equivalence_interruptible;
use crate::{
    check_circuit_equivalence_with_stats, ApplyStats, CancelFlag, Engine, Interrupt, Interrupted,
    StateSet,
};

/// Configuration of the bug hunter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BugHunter {
    /// The engine used to run both circuits.
    pub engine: Engine,
    /// Upper bound on the number of iterations (each iteration frees one
    /// more qubit of the input pattern, so `num_qubits + 1` iterations reach
    /// the set of all basis states).
    pub max_iterations: u32,
}

impl Default for BugHunter {
    fn default() -> Self {
        BugHunter {
            engine: Engine::hybrid(),
            max_iterations: u32::MAX,
        }
    }
}

/// The result of a bug hunt.
#[derive(Clone, Debug, PartialEq)]
pub struct HuntReport {
    /// `true` if a distinguishing output state was found.
    pub bug_found: bool,
    /// Number of analysis iterations performed (the paper's `iter` column in
    /// Table 3).
    pub iterations: u32,
    /// A quantum state produced by exactly one of the two circuits, if a bug
    /// was found.
    pub witness: Option<Tree>,
    /// The number of basis states in the final input set, saturating at
    /// `u128::MAX` when all 128 qubits of a full-width register are freed
    /// (the true count, `2^128`, is off by one from the saturated value).
    pub final_input_size: u128,
    /// Combined gate-application statistics over every iteration — the peak
    /// automaton size reached anywhere in the hunt is the engine's hot-path
    /// health metric (printed per row by `table3`).
    pub stats: ApplyStats,
}

impl HuntReport {
    /// Confirms the hunt's witness with the exact sparse simulator, as the
    /// paper does by feeding its witnesses to SliQSim.
    ///
    /// The witness is an *output* state produced by exactly one of the two
    /// circuits, so it is pulled back to an input by running the inverse
    /// circuit; if the preimage is a single basis state on which the two
    /// circuits' exact outputs differ, that basis input is returned.
    ///
    /// `None` means the witness could not be confirmed this way — no
    /// witness, no basis-state preimage (possible for superposition
    /// witnesses), or a simulation whose sparse support outgrew the
    /// internal budget — not that the hunt result is wrong.
    ///
    /// Thanks to DAG-shared witness trees this works at the paper's Table 3
    /// scale: a 35-qubit witness converts to a sparse state through its
    /// support, never through the `2^36`-node unfolded tree.
    pub fn confirm_with_simulator(&self, original: &Circuit, candidate: &Circuit) -> Option<u128> {
        // Bound on the sparse-state support tolerated anywhere in the
        // confirmation: a superposing circuit can drive intermediate states
        // toward 2^n entries even from a basis-state witness, so every
        // simulation below degrades to "unconfirmable" instead of
        // exhausting memory.
        const MAX_SUPPORT: usize = 1 << 20;
        let witness = self.witness.as_ref()?;
        // Derive the witness guard from `from_tree`'s own panic threshold so
        // the two caps cannot silently drift apart.
        if witness.support_size() > (MAX_SUPPORT as u128).min(SparseState::MAX_TREE_SUPPORT) {
            return None;
        }
        let run_bounded = |circuit: &Circuit, basis: u128| -> Option<SparseState> {
            let mut state = SparseState::basis_state(circuit.num_qubits(), basis);
            state
                .try_apply_circuit(circuit, MAX_SUPPORT)
                .then_some(state)
        };
        let witness_state = SparseState::from_tree(witness);
        for source in [original, candidate] {
            let mut preimage = witness_state.clone();
            if !preimage.try_apply_circuit(&source.dagger(), MAX_SUPPORT) {
                continue;
            }
            if preimage.support_size() != 1 {
                continue;
            }
            let (&basis, _) = preimage
                .to_amplitude_map()
                .iter()
                .next()
                .expect("support checked to be 1");
            if let (Some(out1), Some(out2)) =
                (run_bounded(original, basis), run_bounded(candidate, basis))
            {
                if out1 != out2 {
                    return Some(basis);
                }
            }
        }
        None
    }
}

/// `2^free_count` basis states, saturating at `u128::MAX` when the whole
/// 128-qubit index space is freed (see [`HuntReport::final_input_size`]).
fn input_set_size(free_count: u32) -> u128 {
    if free_count >= basis::MAX_QUBITS {
        u128::MAX
    } else {
        basis::basis_count(free_count)
    }
}

impl BugHunter {
    /// Creates a hunter with the given engine and no iteration bound.
    pub fn new(engine: Engine) -> Self {
        BugHunter {
            engine,
            max_iterations: u32::MAX,
        }
    }

    /// Limits the number of iterations.
    pub fn with_max_iterations(mut self, max_iterations: u32) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Hunts for a bug distinguishing `original` from `candidate`.
    ///
    /// Iteration `i` runs both circuits on an input set of `2^i` basis
    /// states: a random base pattern with `i` randomly chosen free qubits
    /// (iteration 0 is a single random basis state).  The hunt stops as soon
    /// as the two output sets differ, or when the whole basis-state space
    /// has been covered without finding a difference.
    ///
    /// # Panics
    ///
    /// Panics if the circuits have different widths.
    pub fn hunt(&self, original: &Circuit, candidate: &Circuit, rng: &mut impl Rng) -> HuntReport {
        self.hunt_inner(original, candidate, rng, None)
            .expect("hunt without an interrupt cannot stop early")
    }

    /// Like [`BugHunter::hunt`], but cooperatively cancellable: the flag is
    /// checked between gates of every circuit application, and `None` is
    /// returned as soon as it is observed raised.  This is the entry point
    /// used by [`crate::HuntPool`] workers so a confirmed witness on one
    /// thread stops the others mid-hunt.
    pub fn hunt_cancellable(
        &self,
        original: &Circuit,
        candidate: &Circuit,
        rng: &mut impl Rng,
        cancel: &CancelFlag,
    ) -> Option<HuntReport> {
        let interrupt = Interrupt::from_flag(cancel.clone());
        self.hunt_inner(original, candidate, rng, Some(&interrupt))
            .ok()
    }

    /// Like [`BugHunter::hunt`], but governed by an [`Interrupt`]: the
    /// deadline and the peak-size budgets are checked between gates and at
    /// every iteration boundary.  An interrupted hunt reports its reason
    /// and the statistics merged across *all* iterations performed, not
    /// just the interrupted one.
    pub fn hunt_interruptible(
        &self,
        original: &Circuit,
        candidate: &Circuit,
        rng: &mut impl Rng,
        interrupt: &Interrupt,
    ) -> Result<HuntReport, Interrupted> {
        self.hunt_inner(original, candidate, rng, Some(interrupt))
    }

    fn hunt_inner(
        &self,
        original: &Circuit,
        candidate: &Circuit,
        rng: &mut impl Rng,
        interrupt: Option<&Interrupt>,
    ) -> Result<HuntReport, Interrupted> {
        assert_eq!(
            original.num_qubits(),
            candidate.num_qubits(),
            "circuit width mismatch"
        );
        let n = original.num_qubits();
        // A uniformly random n-qubit base pattern (masking a full-width draw
        // is uniform and total right up to the 128-qubit index width).
        let base: BasisIndex = rng.gen::<u128>() & basis::index_mask(n);

        // Random order in which qubits become unconstrained.
        let mut order: Vec<u32> = (0..n).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }

        let mut iterations = 0;
        let mut stats = ApplyStats::default();
        let mut free_mask: BasisIndex = 0;
        for free_count in 0..=n.min(self.max_iterations.saturating_sub(1)) {
            iterations += 1;
            let free = &order[..free_count as usize];
            if free_count > 0 {
                free_mask |= basis::qubit_bit(n, order[free_count as usize - 1]);
            }
            // Freed qubits range over both values, so their base bits are
            // cleared (`basis_pattern` rejects overlapping fixed bits).
            let inputs = StateSet::basis_pattern(n, base & !free_mask, free);
            let (result, iteration_stats) = match interrupt {
                Some(interrupt) => check_circuit_equivalence_interruptible(
                    &self.engine,
                    &inputs,
                    original,
                    candidate,
                    interrupt,
                )
                .map_err(|interrupted| interrupted.merge_stats(&stats))?,
                None => {
                    check_circuit_equivalence_with_stats(&self.engine, &inputs, original, candidate)
                }
            };
            stats = stats.merge(&iteration_stats);
            if let Some(witness) = result.witness() {
                return Ok(HuntReport {
                    bug_found: true,
                    iterations,
                    witness: Some(witness.clone()),
                    final_input_size: input_set_size(free_count),
                    stats,
                });
            }
            if iterations >= self.max_iterations {
                break;
            }
        }
        Ok(HuntReport {
            bug_found: false,
            iterations,
            witness: None,
            final_input_size: input_set_size(iterations - 1),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoq_circuit::generators::{mc_toffoli, random_circuit, RandomCircuitConfig};
    use autoq_circuit::mutation::inject_random_gate;
    use autoq_circuit::Gate;
    use rand::SeedableRng;

    #[test]
    fn identical_circuits_yield_no_bug() {
        let circuit = mc_toffoli(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let report = BugHunter::default()
            .with_max_iterations(3)
            .hunt(&circuit, &circuit, &mut rng);
        assert!(!report.bug_found);
        assert!(report.witness.is_none());
        assert_eq!(report.iterations, 3);
    }

    #[test]
    fn injected_bugs_in_small_reversible_circuits_are_found() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let circuit = mc_toffoli(3);
        for _ in 0..5 {
            let (buggy, _) = inject_random_gate(&circuit, false, &mut rng);
            if buggy.gates() == circuit.gates() {
                continue;
            }
            let report = BugHunter::default().hunt(&circuit, &buggy, &mut rng);
            assert!(report.bug_found, "bug not found");
            assert!(report.iterations >= 1);
            assert!(report.witness.is_some());
        }
    }

    #[test]
    fn bugs_in_random_quantum_circuits_are_found() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let config = RandomCircuitConfig {
            num_qubits: 4,
            num_gates: 12,
            include_superposing_gates: true,
        };
        let circuit = random_circuit(&config, &mut rng);
        let buggy = autoq_circuit::mutation::insert_gate(&circuit, Gate::Z(2), 5);
        // Z commutes with nothing here by luck of the draw? — if the outputs
        // happen to agree on every input the hunter reports no bug, which is
        // also sound; but for this seed the bug is observable.
        let report = BugHunter::default().hunt(&circuit, &buggy, &mut rng);
        assert!(report.bug_found);
        assert!(report.final_input_size >= 1);
    }

    #[test]
    fn iteration_bound_is_respected() {
        let circuit = mc_toffoli(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let report = BugHunter::default()
            .with_max_iterations(1)
            .hunt(&circuit, &circuit, &mut rng);
        assert_eq!(report.iterations, 1);
        assert_eq!(report.final_input_size, 1);
    }
}
