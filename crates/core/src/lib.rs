//! AutoQ-rs: an automata-based framework for verification and bug hunting in
//! quantum circuits.
//!
//! This crate implements the core contribution of the PLDI'23 paper
//! *"An Automata-Based Framework for Verification and Bug Hunting in Quantum
//! Circuits"* (Chen, Chung, Lengál, Lin, Tsai, Yen):
//!
//! * **Sets of quantum states as tree automata** — [`StateSet`] wraps a
//!   [`TreeAutomaton`](autoq_treeaut::TreeAutomaton) whose full binary trees
//!   encode quantum states with exact algebraic amplitudes (Section 3).
//! * **Quantum gates as automata transformers** — two instantiations:
//!   the *permutation-based* encoding of Section 5 ([`permutation`]) and the
//!   *composition-based* encoding of Section 6 ([`composition`]), driven by
//!   the symbolic update formulae of Table 1 ([`formula`]).
//! * **Verification and bug hunting** — `{P} C {Q}` triple checking with
//!   witness extraction ([`verify()`]), circuit (non-)equivalence checking
//!   over a set of inputs, and the incremental bug-hunting strategy of
//!   Section 7.2 ([`hunt`]).  Witnesses are DAG-shared
//!   [`Tree`](autoq_treeaut::Tree)s, so extraction and simulator
//!   confirmation ([`HuntReport::confirm_with_simulator`]) work at the
//!   paper's 35-qubit Table 3 scale.  Hunts compose into a parallel
//!   portfolio ([`HuntPool`]): worker threads drain a job queue over the
//!   sharded tree arena, the first simulator-confirmed witness cancels the
//!   rest ([`CancelFlag`]), and completed campaigns can reclaim their
//!   arena nodes (see `docs/CONCURRENCY.md`).
//!
//! *Pipeline position*: bigint → amplitude → {treeaut, circuit} →
//! simulator → **core** → bench — the user-facing engine tying the automata
//! substrate to circuits, specs and witness confirmation.
//!
//! # Quick start
//!
//! Verify the Bell-state preparation circuit of the paper's overview
//! (Fig. 1): starting from `|00⟩`, the EPR circuit must produce exactly the
//! maximally entangled state `(|00⟩ + |11⟩)/√2`.
//!
//! ```
//! use autoq_amplitude::Algebraic;
//! use autoq_circuit::{Circuit, Gate};
//! use autoq_core::{Engine, SpecMode, StateSet, VerificationOutcome};
//!
//! let epr = Circuit::from_gates(2, [Gate::H(0), Gate::Cnot { control: 0, target: 1 }]).unwrap();
//!
//! let pre = StateSet::basis_state(2, 0b00);
//! let post = StateSet::from_state_fn(2, |basis| match basis {
//!     0b00 | 0b11 => Algebraic::one_over_sqrt2(),
//!     _ => Algebraic::zero(),
//! });
//!
//! let engine = Engine::hybrid();
//! let outcome = autoq_core::verify(&engine, &pre, &epr, &post, SpecMode::Equality);
//! assert_eq!(outcome, VerificationOutcome::Holds);
//! ```

pub mod composition;
pub mod engine;
pub mod formula;
pub mod hunt;
pub mod interrupt;
pub mod permutation;
pub mod pool;
pub mod presets;
mod state_set;
pub mod verify;

pub use composition::{default_eval_threads, CompositionOptions};
pub use engine::{ApplyStats, CancelFlag, Engine, EngineKind, ReductionPolicy};
pub use hunt::{BugHunter, HuntReport};
pub use interrupt::{Interrupt, Interrupted, Resource, StopReason};
pub use pool::{HuntJob, HuntPool, PortfolioOutcome, PortfolioWin};
pub use state_set::StateSet;
pub use verify::{
    check_circuit_equivalence, check_circuit_equivalence_cancellable,
    check_circuit_equivalence_interruptible, check_circuit_equivalence_with_stats,
    compare_with_post, compare_with_post_certified, verify, verify_cancellable,
    verify_interruptible, verify_interruptible_certified, verify_interruptible_observed,
    verify_observed, CertifiedComparison, CertifiedOutcome, CertifiedVerdict, CertifyPolicy,
    SoundnessViolation, SpecMode, VerificationOutcome, VerifyError,
};
