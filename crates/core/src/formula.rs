//! Symbolic update formulae for quantum gates (Table 1 of the paper).
//!
//! A gate's action on the tree view `T : {0,1}ⁿ → amplitudes` of a quantum
//! state is expressed with four operators (Section 4):
//!
//! * *projection* `T_{x_t}` / `T_{x̄_t}` — fix qubit `t` to `1` / `0`,
//! * *restriction* `B_{x_t}·e` / `B̄_{x_t}·e` — zero the branches where
//!   qubit `t` is `0` / `1`,
//! * *scaling* by `ω^j`, `−1` or `1/√2`,
//! * *binary* `+` / `−` of two terms derived from the same source tree.
//!
//! [`UpdateExpr`] is the AST of such formulae and [`update_formula`] returns
//! the formula of every supported primitive gate.  The H and Ry(π/2) rows
//! are derived directly from the gate matrices (Appendix A); all formulae
//! are validated against the exact simulator in tests, which establishes the
//! paper's Theorem 4.1 for this implementation.

use autoq_circuit::Gate;

/// A scaling factor appearing in an update formula.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleFactor {
    /// Multiplication by `ω^j` (`j` taken modulo 8).
    OmegaPow(u8),
    /// Multiplication by `−1`.
    Neg,
    /// Multiplication by `1/√2`.
    InvSqrt2,
}

/// Sign of a binary combination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CombineSign {
    /// Addition of the two terms.
    Plus,
    /// Subtraction (left minus right).
    Minus,
}

/// The abstract syntax of a symbolic update formula.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateExpr {
    /// The source tree `T`.
    Source,
    /// Projection `T_{x_qubit}` (`bit = true`) or `T_{x̄_qubit}` (`bit = false`)
    /// of the source tree.
    Proj {
        /// Qubit whose value is fixed.
        qubit: u32,
        /// The value it is fixed to.
        bit: bool,
    },
    /// Restriction `B_{x_qubit}·inner` (`bit = true`) or `B̄_{x_qubit}·inner`
    /// (`bit = false`).
    Restrict {
        /// Qubit tested by the restriction.
        qubit: u32,
        /// Which value of the qubit keeps its amplitudes (the other branch
        /// is zeroed).
        bit: bool,
        /// The term being restricted.
        inner: Box<UpdateExpr>,
    },
    /// Scalar multiplication.
    Scale {
        /// The factor.
        factor: ScaleFactor,
        /// The term being scaled.
        inner: Box<UpdateExpr>,
    },
    /// Sum or difference of two terms.
    Combine {
        /// The sign.
        sign: CombineSign,
        /// Left term.
        lhs: Box<UpdateExpr>,
        /// Right term.
        rhs: Box<UpdateExpr>,
    },
}

impl UpdateExpr {
    fn proj(qubit: u32, bit: bool) -> Self {
        UpdateExpr::Proj { qubit, bit }
    }

    fn restrict(qubit: u32, bit: bool, inner: UpdateExpr) -> Self {
        UpdateExpr::Restrict {
            qubit,
            bit,
            inner: Box::new(inner),
        }
    }

    fn scale(factor: ScaleFactor, inner: UpdateExpr) -> Self {
        UpdateExpr::Scale {
            factor,
            inner: Box::new(inner),
        }
    }

    fn add(lhs: UpdateExpr, rhs: UpdateExpr) -> Self {
        UpdateExpr::Combine {
            sign: CombineSign::Plus,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    fn sub(lhs: UpdateExpr, rhs: UpdateExpr) -> Self {
        UpdateExpr::Combine {
            sign: CombineSign::Minus,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// The qubits mentioned anywhere in the formula.
    pub fn qubits(&self) -> Vec<u32> {
        let mut qubits = Vec::new();
        self.collect_qubits(&mut qubits);
        qubits.sort_unstable();
        qubits.dedup();
        qubits
    }

    fn collect_qubits(&self, out: &mut Vec<u32>) {
        match self {
            UpdateExpr::Source => {}
            UpdateExpr::Proj { qubit, .. } => out.push(*qubit),
            UpdateExpr::Restrict { qubit, inner, .. } => {
                out.push(*qubit);
                inner.collect_qubits(out);
            }
            UpdateExpr::Scale { inner, .. } => inner.collect_qubits(out),
            UpdateExpr::Combine { lhs, rhs, .. } => {
                lhs.collect_qubits(out);
                rhs.collect_qubits(out);
            }
        }
    }
}

/// The "flip qubit `t`" sub-formula `B̄_{x_t}·T_{x_t} + B_{x_t}·T_{x̄_t}`
/// shared by `X`, `CNOT` and Toffoli (Eq. (11)/(12) of the paper).
fn flip_formula(t: u32) -> UpdateExpr {
    UpdateExpr::add(
        UpdateExpr::restrict(t, false, UpdateExpr::proj(t, true)),
        UpdateExpr::restrict(t, true, UpdateExpr::proj(t, false)),
    )
}

/// The `Z` sub-formula `B̄_{x_t}·T − B_{x_t}·T`.
fn z_formula(t: u32) -> UpdateExpr {
    UpdateExpr::sub(
        UpdateExpr::restrict(t, false, UpdateExpr::Source),
        UpdateExpr::restrict(t, true, UpdateExpr::Source),
    )
}

/// Phase-on-one sub-formula `B̄_{x_t}·T + ω^j·B_{x_t}·T` (used by S, S†, T, T†).
fn phase_formula(t: u32, omega_power: u8) -> UpdateExpr {
    UpdateExpr::add(
        UpdateExpr::restrict(t, false, UpdateExpr::Source),
        UpdateExpr::scale(
            ScaleFactor::OmegaPow(omega_power),
            UpdateExpr::restrict(t, true, UpdateExpr::Source),
        ),
    )
}

/// Returns the symbolic update formula of a primitive gate, or `None` for the
/// convenience gates (`SWAP`, Fredkin) that must be decomposed first.
///
/// # Examples
///
/// ```
/// use autoq_circuit::Gate;
/// use autoq_core::formula::update_formula;
/// assert!(update_formula(&Gate::H(0)).is_some());
/// assert!(update_formula(&Gate::Swap(0, 1)).is_none());
/// ```
pub fn update_formula(gate: &Gate) -> Option<UpdateExpr> {
    use UpdateExpr as E;
    let formula = match *gate {
        // X_t(T) = B̄_{x_t}·T_{x_t} + B_{x_t}·T_{x̄_t}
        Gate::X(t) => flip_formula(t),
        // Y_t(T) = ω²·(B_{x_t}·T_{x̄_t} − B̄_{x_t}·T_{x_t})
        Gate::Y(t) => E::scale(
            ScaleFactor::OmegaPow(2),
            E::sub(
                E::restrict(t, true, E::proj(t, false)),
                E::restrict(t, false, E::proj(t, true)),
            ),
        ),
        // Z_t(T) = B̄_{x_t}·T − B_{x_t}·T
        Gate::Z(t) => z_formula(t),
        // H_t(T) = (T_{x̄_t} + B̄_{x_t}·T_{x_t} − B_{x_t}·T)/√2
        Gate::H(t) => E::scale(
            ScaleFactor::InvSqrt2,
            E::sub(
                E::add(E::proj(t, false), E::restrict(t, false, E::proj(t, true))),
                E::restrict(t, true, E::Source),
            ),
        ),
        Gate::S(t) => phase_formula(t, 2),
        Gate::Sdg(t) => phase_formula(t, 6),
        Gate::T(t) => phase_formula(t, 1),
        Gate::Tdg(t) => phase_formula(t, 7),
        // Rx(π/2)_t(T) = (T − ω²·(B_{x_t}·T_{x̄_t} + B̄_{x_t}·T_{x_t}))/√2
        Gate::RxPi2(t) => E::scale(
            ScaleFactor::InvSqrt2,
            E::sub(
                E::Source,
                E::scale(
                    ScaleFactor::OmegaPow(2),
                    E::add(
                        E::restrict(t, true, E::proj(t, false)),
                        E::restrict(t, false, E::proj(t, true)),
                    ),
                ),
            ),
        ),
        // Ry(π/2)_t(T) = (T − B̄_{x_t}·T_{x_t} + B_{x_t}·T_{x̄_t})/√2
        Gate::RyPi2(t) => E::scale(
            ScaleFactor::InvSqrt2,
            E::add(
                E::sub(E::Source, E::restrict(t, false, E::proj(t, true))),
                E::restrict(t, true, E::proj(t, false)),
            ),
        ),
        // CNOT^c_t(T) = B̄_{x_c}·T + B_{x_c}·(flip_t)
        Gate::Cnot { control, target } => E::add(
            E::restrict(control, false, E::Source),
            E::restrict(control, true, flip_formula(target)),
        ),
        // CZ^c_t(T) = B̄_{x_c}·T + B_{x_c}·(Z_t)
        Gate::Cz { control, target } => E::add(
            E::restrict(control, false, E::Source),
            E::restrict(control, true, z_formula(target)),
        ),
        // Toffoli^{c,c'}_t(T) = B̄_{x_c}·T + B_{x_c}·(B̄_{x_c'}·T + B_{x_c'}·(flip_t))
        Gate::Toffoli {
            controls: [c1, c2],
            target,
        } => E::add(
            E::restrict(c1, false, E::Source),
            E::restrict(
                c1,
                true,
                E::add(
                    E::restrict(c2, false, E::Source),
                    E::restrict(c2, true, flip_formula(target)),
                ),
            ),
        ),
        Gate::Swap(..) | Gate::Fredkin { .. } => return None,
    };
    Some(formula)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_primitive_gate_has_a_formula() {
        let gates = [
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::RxPi2(0),
            Gate::RyPi2(0),
            Gate::Cnot {
                control: 0,
                target: 1,
            },
            Gate::Cz {
                control: 0,
                target: 1,
            },
            Gate::Toffoli {
                controls: [0, 1],
                target: 2,
            },
        ];
        for gate in gates {
            let formula = update_formula(&gate).expect("missing formula");
            assert_eq!(
                formula.qubits(),
                gate.qubits()
                    .into_iter()
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn convenience_gates_have_no_formula() {
        assert!(update_formula(&Gate::Swap(0, 1)).is_none());
        assert!(update_formula(&Gate::Fredkin {
            control: 0,
            targets: [1, 2]
        })
        .is_none());
    }

    #[test]
    fn x_formula_matches_eq_11() {
        let formula = update_formula(&Gate::X(3)).unwrap();
        assert_eq!(formula, flip_formula(3));
        assert_eq!(formula.qubits(), vec![3]);
    }

    #[test]
    fn controlled_formulae_nest_the_target_formula() {
        let cnot = update_formula(&Gate::Cnot {
            control: 1,
            target: 4,
        })
        .unwrap();
        match cnot {
            UpdateExpr::Combine {
                sign: CombineSign::Plus,
                rhs,
                ..
            } => match *rhs {
                UpdateExpr::Restrict {
                    qubit: 1,
                    bit: true,
                    inner,
                } => {
                    assert_eq!(*inner, flip_formula(4));
                }
                other => panic!("unexpected rhs {other:?}"),
            },
            other => panic!("unexpected formula {other:?}"),
        }
    }
}
