//! Pre-/post-condition presets for the paper's benchmark families
//! (Appendix E).

use autoq_circuit::generators::{bernstein_vazirani_expected_output, GroverLayout};
use autoq_circuit::Circuit;

use crate::StateSet;

/// Pre- and post-condition of a verification benchmark, as used by Table 2.
#[derive(Clone, Debug)]
pub struct Spec {
    /// The set of input states `P`.
    pub pre: StateSet,
    /// The set of required output states `Q`.
    pub post: StateSet,
}

/// The Bernstein–Vazirani specification: from `|0…0⟩` the circuit must reach
/// exactly `|s⟩ ⊗ |1⟩` (Appendix E).
///
/// ```
/// use autoq_circuit::generators::bernstein_vazirani;
/// use autoq_core::presets::bv_spec;
/// use autoq_core::{verify, Engine, SpecMode};
///
/// let hidden = [true, false, true];
/// let circuit = bernstein_vazirani(&hidden);
/// let spec = bv_spec(&hidden);
/// assert!(verify(&Engine::hybrid(), &spec.pre, &circuit, &spec.post, SpecMode::Equality).holds());
/// ```
pub fn bv_spec(hidden: &[bool]) -> Spec {
    let n = hidden.len() as u32 + 1;
    Spec {
        pre: StateSet::basis_state(n, 0),
        post: StateSet::basis_state(n, bernstein_vazirani_expected_output(hidden).into()),
    }
}

/// The MCToffoli specification: the pre- and post-condition are the same set
/// `{|c 0^(m−1) t⟩ : c ∈ {0,1}^m, t ∈ {0,1}}` — all basis states whose work
/// qubits are clean (Appendix E).
///
/// `circuit` must be the output of
/// [`mc_toffoli`](autoq_circuit::generators::mc_toffoli).
pub fn mc_toffoli_spec(circuit: &Circuit) -> Spec {
    let n = circuit.num_qubits();
    let m = n / 2;
    let free: Vec<u32> = (0..m).chain(std::iter::once(n - 1)).collect();
    let set = StateSet::basis_pattern(n, 0, &free);
    Spec {
        pre: set.clone(),
        post: set,
    }
}

/// The Grover-Single pre-condition `{|0…0⟩}` (the post-condition depends on
/// the amplified amplitudes and is computed from a reference execution; see
/// the benchmark harness).
pub fn grover_single_pre(layout: &GroverLayout, num_qubits: u32) -> StateSet {
    let _ = layout;
    StateSet::basis_state(num_qubits, 0)
}

/// The Grover-All pre-condition `{|s 0^m 0^m⟩ : s ∈ {0,1}^m}`: the oracle
/// register ranges over all values, every other qubit starts at `0`
/// (Appendix E).
pub fn grover_all_pre(layout: &GroverLayout, num_qubits: u32) -> StateSet {
    StateSet::basis_pattern(num_qubits, 0, &layout.oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoq_circuit::generators::{grover_all, grover_single, mc_toffoli};

    #[test]
    fn bv_spec_sizes() {
        let spec = bv_spec(&[true, true, false]);
        assert_eq!(spec.pre.num_qubits(), 4);
        assert_eq!(spec.pre.states(4).len(), 1);
        assert_eq!(spec.post.states(4).len(), 1);
    }

    #[test]
    fn mc_toffoli_spec_counts_match_the_paper_structure() {
        let circuit = mc_toffoli(4);
        let spec = mc_toffoli_spec(&circuit);
        // 2^(m+1) basis states: controls and target free.
        assert_eq!(spec.pre.states(64).len(), 32);
        // Pre- and post-condition are the same set.
        assert_eq!(spec.pre.states(64), spec.post.states(64));
    }

    #[test]
    fn grover_preconditions_have_expected_sizes() {
        let (single_circuit, single_layout) = grover_single(3, 0b010, Some(1));
        let pre = grover_single_pre(&single_layout, single_circuit.num_qubits());
        assert_eq!(pre.states(4).len(), 1);

        let (all_circuit, all_layout) = grover_all(3, Some(1));
        let pre = grover_all_pre(&all_layout, all_circuit.num_qubits());
        assert_eq!(pre.states(16).len(), 8);
        // Every state fixes the non-oracle qubits to zero.
        for state in pre.states(16) {
            let basis = *state.keys().next().unwrap();
            let non_oracle_mask = autoq_treeaut::basis::index_mask(
                all_circuit.num_qubits() - all_layout.oracle.len() as u32,
            );
            assert_eq!(basis & non_oracle_mask, 0);
        }
    }
}
