//! Cooperative interruption: cancellation, wall-clock deadlines and
//! resource budgets, unified behind one [`Interrupt`] handle.
//!
//! The paper's evaluation is defined by resource exhaustion — the Table 2/3
//! baselines "timeout" and "OOM" on the superposing rows — so the engine
//! needs a first-class notion of both.  An [`Interrupt`] generalises the
//! [`CancelFlag`]: it carries the flag *plus* an optional deadline and
//! optional peak-size budgets, and is checked at every point the flag is
//! checked today — between gates, inside composition swap ladders, between
//! hunt iterations and at portfolio job boundaries.  A run that trips a
//! limit stops within one gate boundary and reports a typed
//! [`Interrupted`] carrying the [`StopReason`] and the statistics gathered
//! so far, instead of hanging, exhausting memory or returning a bare
//! `None`.
//!
//! # Check-point invariants
//!
//! * **Monotone**: once [`Interrupt::check`] fails, every later check fails
//!   with an equally strong reason (the flag stays raised, the clock only
//!   advances, watermarks only grow).
//! * **Bounded staleness**: the engine checks between user-level gates and
//!   the composition pipeline additionally checks between swap-ladder
//!   passes, so a run overshoots its budget by at most one gate's worth of
//!   growth before stopping.
//! * **Partial results are discarded**: an interrupted run never yields an
//!   output automaton; only its [`ApplyStats`] survive, attached to the
//!   [`Interrupted`] report.
//!
//! # Examples
//!
//! ```
//! use std::time::Duration;
//! use autoq_core::{Interrupt, StopReason, Resource};
//!
//! let interrupt = Interrupt::new()
//!     .with_deadline(Duration::from_secs(5))
//!     .with_max_states(10_000);
//! assert!(interrupt.check_sizes(9_999, 0).is_ok());
//! match interrupt.check_sizes(10_001, 0) {
//!     Err(StopReason::Exhausted { resource: Resource::States, .. }) => {}
//!     other => panic!("expected a states-budget stop, got {other:?}"),
//! }
//! ```

use std::time::{Duration, Instant};

use crate::engine::{ApplyStats, CancelFlag};

/// The resource whose budget a run exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resource {
    /// The wall-clock deadline passed.
    WallClock,
    /// The peak automaton state count exceeded its cap.
    States,
    /// The peak automaton transition count exceeded its cap.
    Transitions,
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Resource::WallClock => "wall-clock deadline",
            Resource::States => "state budget",
            Resource::Transitions => "transition budget",
        })
    }
}

/// Why a run stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The [`CancelFlag`] was raised (client disconnect, a portfolio winner,
    /// an explicit cancel request).
    Cancelled,
    /// A resource budget was exhausted.  For [`Resource::WallClock`] the
    /// `limit` and `observed` fields are milliseconds; for the size budgets
    /// they are automaton state/transition counts.
    Exhausted {
        /// Which budget tripped.
        resource: Resource,
        /// The configured cap.
        limit: u64,
        /// The value that exceeded it.
        observed: u64,
    },
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Cancelled => f.write_str("cancelled"),
            StopReason::Exhausted {
                resource,
                limit,
                observed,
            } => write!(f, "{resource} exhausted ({observed} > {limit})"),
        }
    }
}

/// A typed early-stop report: the reason plus the statistics the run had
/// gathered when it stopped.  The output automaton of an interrupted run is
/// always discarded — `partial_stats` is what survives for diagnosis (the
/// peak sizes show *how far* the run got before tripping its budget).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interrupted {
    /// Why the run stopped.
    pub reason: StopReason,
    /// Statistics accumulated up to the stop point.
    pub partial_stats: ApplyStats,
}

impl Interrupted {
    /// Attaches (merges) additional statistics gathered outside the failing
    /// call — hunt loops use this so a multi-iteration hunt reports its
    /// whole history, not just the interrupted iteration.
    pub fn merge_stats(mut self, stats: &ApplyStats) -> Interrupted {
        self.partial_stats = self.partial_stats.merge(stats);
        self
    }
}

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "run interrupted: {}", self.reason)
    }
}

/// A cancellation flag generalised with a wall-clock deadline and peak-size
/// budgets.  Cheap to clone (the flag is shared; the limits are copied) and
/// cheap to check — a check is one atomic load plus, when a deadline is
/// set, one monotonic clock read.
///
/// An `Interrupt` with no deadline and no budgets behaves exactly like a
/// bare [`CancelFlag`], which is how the pre-existing `*_cancellable` entry
/// points are implemented.
#[derive(Clone, Debug, Default)]
pub struct Interrupt {
    cancel: CancelFlag,
    /// `(fires_at, total)` — the total is kept so exhaustion reports can
    /// state the configured limit in milliseconds.
    deadline: Option<(Instant, Duration)>,
    max_states: Option<u64>,
    max_transitions: Option<u64>,
}

impl Interrupt {
    /// An interrupt with a fresh flag and no limits.
    pub fn new() -> Self {
        Interrupt::default()
    }

    /// An interrupt sharing an existing cancel flag (no limits).
    pub fn from_flag(cancel: CancelFlag) -> Self {
        Interrupt {
            cancel,
            ..Interrupt::default()
        }
    }

    /// Returns a copy whose deadline is `budget` from **now**.
    pub fn with_deadline(self, budget: Duration) -> Self {
        Interrupt {
            deadline: Some((Instant::now() + budget, budget)),
            ..self
        }
    }

    /// Returns a copy capping the peak automaton state count.
    pub fn with_max_states(self, max_states: u64) -> Self {
        Interrupt {
            max_states: Some(max_states),
            ..self
        }
    }

    /// Returns a copy capping the peak automaton transition count.
    pub fn with_max_transitions(self, max_transitions: u64) -> Self {
        Interrupt {
            max_transitions: Some(max_transitions),
            ..self
        }
    }

    /// Returns a copy with the same limits but sharing `cancel` instead of
    /// this interrupt's flag — how [`HuntPool`](crate::HuntPool) gives every
    /// worker the caller's budgets under the pool's own winner-cancellation
    /// flag.
    pub fn with_flag(self, cancel: CancelFlag) -> Self {
        Interrupt { cancel, ..self }
    }

    /// The shared cancellation flag.
    pub fn flag(&self) -> &CancelFlag {
        &self.cancel
    }

    /// Raises the cancellation flag (all clones observe it).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Whether the cancellation flag is raised.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Whether the deadline (if any) has passed.
    pub fn deadline_elapsed(&self) -> bool {
        self.deadline
            .is_some_and(|(fires_at, _)| Instant::now() >= fires_at)
    }

    /// Checks the flag, the deadline and the size budgets against raw peak
    /// counts; `Err` carries the strongest applicable reason (cancellation
    /// is reported before exhaustion).
    pub fn check_sizes(&self, states: usize, transitions: usize) -> Result<(), StopReason> {
        if self.cancel.is_cancelled() {
            return Err(StopReason::Cancelled);
        }
        if let Some((fires_at, total)) = self.deadline {
            let now = Instant::now();
            if now >= fires_at {
                let started = fires_at - total;
                return Err(StopReason::Exhausted {
                    resource: Resource::WallClock,
                    limit: total.as_millis() as u64,
                    observed: now.duration_since(started).as_millis() as u64,
                });
            }
        }
        if let Some(limit) = self.max_states {
            if states as u64 > limit {
                return Err(StopReason::Exhausted {
                    resource: Resource::States,
                    limit,
                    observed: states as u64,
                });
            }
        }
        if let Some(limit) = self.max_transitions {
            if transitions as u64 > limit {
                return Err(StopReason::Exhausted {
                    resource: Resource::Transitions,
                    limit,
                    observed: transitions as u64,
                });
            }
        }
        Ok(())
    }

    /// [`Interrupt::check_sizes`] against a run's statistics watermarks —
    /// the form the engine uses between gates.
    pub fn check(&self, stats: &ApplyStats) -> Result<(), StopReason> {
        self.check_sizes(stats.peak_states, stats.peak_transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_interrupt_behaves_like_a_cancel_flag() {
        let interrupt = Interrupt::new();
        assert!(interrupt.check_sizes(usize::MAX, usize::MAX).is_ok());
        interrupt.cancel();
        assert_eq!(
            interrupt.check_sizes(0, 0),
            Err(StopReason::Cancelled),
            "a raised flag must dominate"
        );
    }

    #[test]
    fn shared_flag_is_observed_across_clones() {
        let flag = CancelFlag::new();
        let interrupt = Interrupt::from_flag(flag.clone()).with_max_states(10);
        flag.cancel();
        assert_eq!(interrupt.check_sizes(0, 0), Err(StopReason::Cancelled));
    }

    #[test]
    fn state_and_transition_budgets_trip_with_observed_values() {
        let interrupt = Interrupt::new().with_max_states(5).with_max_transitions(7);
        assert!(interrupt.check_sizes(5, 7).is_ok(), "at the cap is fine");
        assert_eq!(
            interrupt.check_sizes(6, 0),
            Err(StopReason::Exhausted {
                resource: Resource::States,
                limit: 5,
                observed: 6,
            })
        );
        assert_eq!(
            interrupt.check_sizes(0, 8),
            Err(StopReason::Exhausted {
                resource: Resource::Transitions,
                limit: 7,
                observed: 8,
            })
        );
    }

    #[test]
    fn zero_deadline_trips_immediately_and_reports_milliseconds() {
        let interrupt = Interrupt::new().with_deadline(Duration::ZERO);
        match interrupt.check_sizes(0, 0) {
            Err(StopReason::Exhausted {
                resource: Resource::WallClock,
                limit: 0,
                ..
            }) => {}
            other => panic!("expected a deadline stop, got {other:?}"),
        }
        assert!(interrupt.deadline_elapsed());
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let interrupt = Interrupt::new().with_deadline(Duration::from_secs(3600));
        assert!(interrupt.check_sizes(1_000_000, 1_000_000).is_ok());
        assert!(!interrupt.deadline_elapsed());
    }

    #[test]
    fn with_flag_keeps_limits_but_swaps_the_flag() {
        let pool_flag = CancelFlag::new();
        let interrupt = Interrupt::new()
            .with_max_states(3)
            .with_flag(pool_flag.clone());
        assert_eq!(
            interrupt.check_sizes(4, 0),
            Err(StopReason::Exhausted {
                resource: Resource::States,
                limit: 3,
                observed: 4,
            })
        );
        pool_flag.cancel();
        assert_eq!(interrupt.check_sizes(4, 0), Err(StopReason::Cancelled));
    }

    #[test]
    fn interrupted_merges_outer_stats_and_displays() {
        let interrupted = Interrupted {
            reason: StopReason::Exhausted {
                resource: Resource::States,
                limit: 10,
                observed: 12,
            },
            partial_stats: ApplyStats {
                peak_states: 12,
                peak_transitions: 30,
                reductions: 1,
                gates_applied: 2,
                certified: None,
            },
        };
        let outer = ApplyStats {
            peak_states: 5,
            peak_transitions: 99,
            reductions: 4,
            gates_applied: 7,
            certified: None,
        };
        let merged = interrupted.merge_stats(&outer);
        assert_eq!(merged.partial_stats.peak_states, 12);
        assert_eq!(merged.partial_stats.peak_transitions, 99);
        assert_eq!(merged.partial_stats.gates_applied, 9);
        assert!(format!("{merged}").contains("state budget"));
        assert_eq!(format!("{}", StopReason::Cancelled), "cancelled");
    }
}
