//! Sets of quantum states represented by tree automata (Section 3).

use std::collections::BTreeMap;

use autoq_amplitude::Algebraic;
use autoq_treeaut::basis::{self, BasisIndex};
use autoq_treeaut::{InternalSymbol, Tree, TreeAutomaton};

/// A set of `n`-qubit quantum states, stored as a tree automaton over full
/// binary trees of height `n`.
///
/// `StateSet` is the user-facing handle of the framework: pre- and
/// post-conditions, intermediate analysis results and witness sets are all
/// `StateSet`s.
///
/// # Examples
///
/// ```
/// use autoq_core::StateSet;
///
/// // All computational basis states of a 3-qubit register — the set Q_n of
/// // Example 3.1 — has a linear-size automaton: 2n+1 states, 3n+1 transitions.
/// let all = StateSet::all_basis_states(3);
/// assert_eq!(all.state_count(), 7);
/// assert_eq!(all.transition_count(), 10);
/// assert_eq!(all.states(100).len(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct StateSet {
    num_qubits: u32,
    automaton: TreeAutomaton,
}

impl StateSet {
    /// Wraps an existing automaton.
    ///
    /// # Panics
    ///
    /// Panics if the automaton fails basic validation.
    pub fn from_automaton(num_qubits: u32, automaton: TreeAutomaton) -> Self {
        assert_eq!(automaton.num_vars, num_qubits, "automaton height mismatch");
        automaton.validate().expect("invalid automaton");
        StateSet {
            num_qubits,
            automaton,
        }
    }

    /// The singleton set `{|basis⟩}`.
    ///
    /// Built directly as the linear-size automaton (`2n + 1` states,
    /// mirroring the DAG sharing of [`Tree::basis_state`] on the automaton
    /// side), so the construction scales to the full 128-bit index width —
    /// past the paper's 70-qubit `Random` rows.
    ///
    /// ```
    /// # use autoq_core::StateSet;
    /// let set = StateSet::basis_state(3, 0b101);
    /// assert_eq!(set.states(10).len(), 1);
    /// // 70 qubits: the automaton stays linear, and membership tests stay
    /// // linear too (DAG-shared trees + memoised runs).
    /// let wide = StateSet::basis_state(70, 1 << 69);
    /// assert_eq!(wide.state_count(), 141);
    /// assert!(wide.contains_basis_state(1 << 69));
    /// assert!(!wide.contains_basis_state(3));
    /// ```
    pub fn basis_state(num_qubits: u32, basis: BasisIndex) -> Self {
        assert!(
            num_qubits <= basis::MAX_QUBITS,
            "basis_state supports at most {} qubits (u128 basis indices)",
            basis::MAX_QUBITS
        );
        basis::assert_in_range(num_qubits, basis);
        if num_qubits == 0 {
            let tree = Tree::basis_state(num_qubits, basis);
            return StateSet {
                num_qubits,
                automaton: TreeAutomaton::from_tree(&tree),
            };
        }
        Self::basis_pattern(num_qubits, basis, &[])
    }

    /// The singleton set containing the state described by an amplitude
    /// function over basis indices (MSBF encoding).
    ///
    /// Evaluates `f` at all `2^num_qubits` indices (the automaton and the
    /// intermediate tree stay small through hash-consing, but the time is
    /// exponential) — intended for small, explicitly-specified states like
    /// pre/post-conditions.
    pub fn from_state_fn(num_qubits: u32, f: impl Fn(BasisIndex) -> Algebraic) -> Self {
        let tree = Tree::from_fn(num_qubits, f);
        StateSet {
            num_qubits,
            automaton: TreeAutomaton::from_tree(&tree),
        }
    }

    /// A set given by explicit states, each described by a map from basis
    /// indices to amplitudes (absent entries are zero).
    pub fn from_state_maps(num_qubits: u32, states: &[BTreeMap<BasisIndex, Algebraic>]) -> Self {
        let trees: Vec<Tree> = states
            .iter()
            .map(|map| {
                Tree::from_fn(num_qubits, |basis| {
                    map.get(&basis).cloned().unwrap_or_else(Algebraic::zero)
                })
            })
            .collect();
        StateSet {
            num_qubits,
            automaton: TreeAutomaton::from_trees(num_qubits, &trees).reduce(),
        }
    }

    /// The set of **all** computational basis states `{|i⟩ : i ∈ {0,1}ⁿ}`,
    /// built directly as the linear-size automaton of Example 3.1
    /// (`2n + 1` states, `3n + 1` transitions).
    pub fn all_basis_states(num_qubits: u32) -> Self {
        Self::basis_pattern(num_qubits, 0, &(0..num_qubits).collect::<Vec<_>>())
    }

    /// The set of basis states obtained from `fixed` by letting every qubit
    /// listed in `free` range over both values; all other qubits keep their
    /// bit from `fixed` (MSBF: qubit 0 is the most significant bit).
    ///
    /// This is the family of input sets used by the paper's experiments: the
    /// MCToffoli pre-condition fixes the work qubits to `0` and frees the
    /// control/target qubits; the bug-hunting strategy of Section 7.2 starts
    /// from a single basis state and frees one more qubit per iteration.
    ///
    /// ```
    /// # use autoq_core::StateSet;
    /// // |x 0 y⟩ for x, y ∈ {0,1}
    /// let set = StateSet::basis_pattern(3, 0b000, &[0, 2]);
    /// assert_eq!(set.states(10).len(), 4);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if there are no qubits or more than [`basis::MAX_QUBITS`], if
    /// `fixed` has bits outside the `num_qubits`-qubit space, if a `free`
    /// position is out of range, or if `fixed` sets a bit at a `free`
    /// position (the bit would be silently ignored — the caller's pattern
    /// and the constructed set would disagree).
    pub fn basis_pattern(num_qubits: u32, fixed: BasisIndex, free: &[u32]) -> Self {
        assert!(num_qubits > 0, "need at least one qubit");
        assert!(
            num_qubits <= basis::MAX_QUBITS,
            "basis_pattern supports at most {} qubits (u128 basis indices)",
            basis::MAX_QUBITS
        );
        basis::assert_in_range(num_qubits, fixed);
        let mut free_mask: BasisIndex = 0;
        for &q in free {
            free_mask |= basis::qubit_bit(num_qubits, q);
        }
        assert!(
            fixed & free_mask == 0,
            "fixed bits {fixed:#b} overlap the free qubit positions {free:?}: \
             a fixed value at a free position would be silently ignored"
        );
        let mut automaton = TreeAutomaton::new(num_qubits);
        let leaf_zero = automaton.leaf_state(&Algebraic::zero());
        let leaf_one = automaton.leaf_state(&Algebraic::one());
        // For every layer from the bottom up we keep two states: one that
        // generates the all-zero subtree and one that generates the subtree
        // carrying the single 1 leaf (on the path selected by `fixed`/`free`).
        let mut zero_state = leaf_zero;
        let mut one_state = leaf_one;
        for var in (0..num_qubits).rev() {
            let new_zero = automaton.add_state();
            let new_one = automaton.add_state();
            automaton.add_internal(new_zero, InternalSymbol::new(var), zero_state, zero_state);
            let bit = (fixed >> (num_qubits - 1 - var)) & 1;
            let is_free = free_mask & basis::qubit_bit(num_qubits, var) != 0;
            if is_free || bit == 0 {
                automaton.add_internal(new_one, InternalSymbol::new(var), one_state, zero_state);
            }
            if is_free || bit == 1 {
                automaton.add_internal(new_one, InternalSymbol::new(var), zero_state, one_state);
            }
            zero_state = new_zero;
            one_state = new_one;
        }
        automaton.add_root(one_state);
        let automaton = automaton.trim();
        StateSet {
            num_qubits,
            automaton,
        }
    }

    /// The union of two sets over the same number of qubits.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn union(&self, other: &StateSet) -> StateSet {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        let mut automaton = self.automaton.clone();
        let offset = automaton.import_disjoint(&other.automaton);
        let other_roots: Vec<_> = other
            .automaton
            .roots
            .iter()
            .map(|r| r.offset(offset))
            .collect();
        for root in other_roots {
            automaton.add_root(root);
        }
        StateSet {
            num_qubits: self.num_qubits,
            automaton: automaton.reduce(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The underlying tree automaton.
    pub fn automaton(&self) -> &TreeAutomaton {
        &self.automaton
    }

    /// Number of automaton states (the paper's "states" column in Table 2).
    pub fn state_count(&self) -> usize {
        self.automaton.state_count()
    }

    /// Number of automaton transitions (the paper's "(transitions)" column).
    pub fn transition_count(&self) -> usize {
        self.automaton.transition_count()
    }

    /// Enumerates up to `limit` states of the set as maps from basis indices
    /// to non-zero amplitudes.
    pub fn states(&self, limit: usize) -> Vec<BTreeMap<BasisIndex, Algebraic>> {
        self.automaton
            .enumerate(limit)
            .iter()
            .map(Tree::to_amplitude_map)
            .collect()
    }

    /// Returns `true` if the set contains the state described by `f`.
    pub fn contains_state_fn(&self, f: impl Fn(BasisIndex) -> Algebraic) -> bool {
        self.automaton.accepts(&Tree::from_fn(self.num_qubits, f))
    }

    /// Returns `true` if the set contains the computational basis state.
    ///
    /// Linear in the automaton and qubit count: the query tree is a
    /// DAG-shared [`Tree::basis_state`] and the membership run is memoised
    /// on its nodes, so this works at the full 128-qubit index width.
    pub fn contains_basis_state(&self, basis: BasisIndex) -> bool {
        self.automaton
            .accepts(&Tree::basis_state(self.num_qubits, basis))
    }

    /// Applies the automaton reduction (trimming + successor merging) and
    /// returns the reduced set.
    pub fn reduced(&self) -> StateSet {
        StateSet {
            num_qubits: self.num_qubits,
            automaton: self.automaton.reduce(),
        }
    }

    /// Replaces the underlying automaton (used by the gate transformers).
    pub(crate) fn with_automaton(&self, automaton: TreeAutomaton) -> StateSet {
        StateSet {
            num_qubits: self.num_qubits,
            automaton,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_state_set_contains_exactly_one_state() {
        let set = StateSet::basis_state(4, 0b1010);
        assert!(set.contains_basis_state(0b1010));
        assert!(!set.contains_basis_state(0b1011));
        assert_eq!(set.states(10).len(), 1);
        assert_eq!(set.num_qubits(), 4);
    }

    #[test]
    fn all_basis_states_has_linear_size() {
        for n in 1..8u32 {
            let set = StateSet::all_basis_states(n);
            assert_eq!(set.state_count(), 2 * n as usize + 1, "states for n = {n}");
            assert_eq!(
                set.transition_count(),
                3 * n as usize + 1,
                "transitions for n = {n}"
            );
            if n <= 5 {
                assert_eq!(set.states(1 << n).len(), 1 << n);
            }
        }
    }

    #[test]
    fn basis_pattern_fixes_and_frees_qubits() {
        // 4 qubits, fix qubit 1 to 1 and qubit 3 to 0, free qubits 0 and 2.
        let set = StateSet::basis_pattern(4, 0b0100, &[0, 2]);
        let states = set.states(100);
        assert_eq!(states.len(), 4);
        for map in &states {
            assert_eq!(map.len(), 1);
            let basis = *map.keys().next().unwrap();
            assert_eq!((basis >> 2) & 1, 1, "qubit 1 must stay 1");
            assert_eq!(basis & 1, 0, "qubit 3 must stay 0");
        }
    }

    #[test]
    fn pattern_with_no_free_qubits_is_a_single_basis_state() {
        let set = StateSet::basis_pattern(3, 0b011, &[]);
        assert_eq!(set.states(10).len(), 1);
        assert!(set.contains_basis_state(0b011));
    }

    #[test]
    fn union_merges_languages() {
        let a = StateSet::basis_state(2, 0);
        let b = StateSet::basis_state(2, 3);
        let union = a.union(&b);
        assert!(union.contains_basis_state(0));
        assert!(union.contains_basis_state(3));
        assert!(!union.contains_basis_state(1));
        assert_eq!(union.states(10).len(), 2);
    }

    #[test]
    fn from_state_maps_builds_superpositions() {
        let mut bell = BTreeMap::new();
        bell.insert(0u128, Algebraic::one_over_sqrt2());
        bell.insert(3u128, Algebraic::one_over_sqrt2());
        let set = StateSet::from_state_maps(2, &[bell.clone()]);
        assert!(set.contains_state_fn(|b| match b {
            0 | 3 => Algebraic::one_over_sqrt2(),
            _ => Algebraic::zero(),
        }));
        assert_eq!(set.states(10), vec![bell]);
    }

    #[test]
    fn from_state_fn_and_contains_state_fn_round_trip() {
        let set = StateSet::from_state_fn(2, |b| {
            if b == 1 {
                -&Algebraic::one()
            } else {
                Algebraic::zero()
            }
        });
        assert!(set.contains_state_fn(|b| if b == 1 {
            -&Algebraic::one()
        } else {
            Algebraic::zero()
        }));
        assert!(!set.contains_basis_state(1));
    }

    #[test]
    fn reduced_preserves_language() {
        let a = StateSet::basis_state(3, 1).union(&StateSet::basis_state(3, 5));
        let reduced = a.reduced();
        assert_eq!(reduced.states(10).len(), 2);
        assert!(reduced.state_count() <= a.state_count());
    }

    #[test]
    #[should_panic(expected = "qubit count mismatch")]
    fn union_of_mismatched_sets_panics() {
        let _ = StateSet::basis_state(2, 0).union(&StateSet::basis_state(3, 0));
    }
}
