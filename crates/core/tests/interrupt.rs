//! End-to-end behaviour of the unified interrupt/budget layer: deadlines
//! and size budgets stop verification, hunts and portfolio runs with typed
//! outcomes instead of hangs or unbounded growth.

use std::time::{Duration, Instant};

use autoq_circuit::generators::{
    bernstein_vazirani, mc_toffoli, random_circuit, RandomCircuitConfig,
};
use autoq_circuit::mutation::insert_gate;
use autoq_circuit::Gate;
use autoq_core::{
    verify_interruptible, BugHunter, Engine, HuntJob, HuntPool, Interrupt, Resource, SpecMode,
    StateSet, StopReason,
};
use rand::SeedableRng;

fn superposing_circuit(qubits: u32, gates: usize, seed: u64) -> autoq_circuit::Circuit {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    random_circuit(
        &RandomCircuitConfig {
            num_qubits: qubits,
            num_gates: gates,
            include_superposing_gates: true,
        },
        &mut rng,
    )
}

#[test]
fn unlimited_interrupt_matches_the_plain_run() {
    let circuit = bernstein_vazirani(&[true, false, true]);
    let n = circuit.num_qubits();
    let input = StateSet::basis_state(n, 0);
    let engine = Engine::hybrid();
    let (plain, plain_stats) = engine.apply_circuit_with_stats(&input, &circuit);
    let (governed, governed_stats) = engine
        .apply_circuit_interruptible(&input, &circuit, &Interrupt::new())
        .expect("an unlimited interrupt must not stop the run");
    assert!(autoq_treeaut::equivalence(plain.automaton(), governed.automaton()).holds());
    assert_eq!(plain_stats, governed_stats);
}

#[test]
fn expired_deadline_stops_before_the_first_gate() {
    let circuit = superposing_circuit(12, 40, 3);
    let input = StateSet::basis_state(circuit.num_qubits(), 0);
    let interrupt = Interrupt::new().with_deadline(Duration::ZERO);
    let started = Instant::now();
    let err = Engine::hybrid()
        .apply_circuit_interruptible(&input, &circuit, &interrupt)
        .expect_err("a zero deadline must stop the run");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "an expired deadline must stop promptly"
    );
    match err.reason {
        StopReason::Exhausted {
            resource: Resource::WallClock,
            ..
        } => {}
        other => panic!("expected a wall-clock stop, got {other:?}"),
    }
    assert_eq!(
        err.partial_stats.gates_applied, 0,
        "the pre-gate checkpoint fires before any gate is applied"
    );
}

#[test]
fn state_budget_stops_a_superposing_run_within_one_gate() {
    let circuit = superposing_circuit(10, 60, 7);
    let input = StateSet::basis_state(circuit.num_qubits(), 0);
    let engine = Engine::hybrid();
    // Establish the run's true peak, then rerun with a budget below it.
    let (_, stats) = engine.apply_circuit_with_stats(&input, &circuit);
    assert!(stats.peak_states > 4, "need a circuit that actually grows");
    let cap = (stats.peak_states / 2).max(2) as u64;
    let interrupt = Interrupt::new().with_max_states(cap);
    let err = engine
        .apply_circuit_interruptible(&input, &circuit, &interrupt)
        .expect_err("a budget below the peak must stop the run");
    match err.reason {
        StopReason::Exhausted {
            resource: Resource::States,
            limit,
            observed,
        } => {
            assert_eq!(limit, cap);
            assert!(observed > cap, "observed {observed} must exceed cap {cap}");
        }
        other => panic!("expected a states stop, got {other:?}"),
    }
    assert!(
        err.partial_stats.gates_applied < stats.gates_applied,
        "the run must stop before finishing the circuit"
    );
    // Within one gate boundary of the limit: the recorded watermark is the
    // one that tripped the check, so it is the partial run's peak.
    assert_eq!(
        err.partial_stats.peak_states,
        match err.reason {
            StopReason::Exhausted { observed, .. } => observed as usize,
            _ => unreachable!(),
        }
    );
}

#[test]
fn transition_budget_stops_the_run_with_a_typed_reason() {
    let circuit = superposing_circuit(10, 60, 11);
    let input = StateSet::basis_state(circuit.num_qubits(), 0);
    let engine = Engine::hybrid();
    let (_, stats) = engine.apply_circuit_with_stats(&input, &circuit);
    let cap = (stats.peak_transitions / 2).max(2) as u64;
    let err = engine
        .apply_circuit_interruptible(
            &input,
            &circuit,
            &Interrupt::new().with_max_transitions(cap),
        )
        .expect_err("a transition budget below the peak must stop the run");
    assert!(matches!(
        err.reason,
        StopReason::Exhausted {
            resource: Resource::Transitions,
            ..
        }
    ));
}

#[test]
fn composition_engine_checks_inside_single_gates() {
    // The composition encoding grows automata inside a single gate's swap
    // ladder; the in-ladder checkpoints must trip even when the budget is
    // exhausted mid-gate.
    let circuit = superposing_circuit(8, 30, 5);
    let input = StateSet::basis_state(circuit.num_qubits(), 0);
    let engine = Engine::composition();
    let err = engine
        .apply_circuit_interruptible(&input, &circuit, &Interrupt::new().with_max_states(1))
        .expect_err("a one-state budget must stop a composition run");
    assert!(matches!(err.reason, StopReason::Exhausted { .. }));
}

#[test]
fn verify_interruptible_reports_partial_stats() {
    let circuit = superposing_circuit(10, 50, 13);
    let n = circuit.num_qubits();
    let pre = StateSet::basis_state(n, 0);
    let post = StateSet::all_basis_states(n);
    let engine = Engine::hybrid();
    let err = verify_interruptible(
        &engine,
        &pre,
        &circuit,
        &post,
        SpecMode::Inclusion,
        &Interrupt::new().with_max_states(2),
    )
    .expect_err("a two-state budget must stop the verification");
    assert!(matches!(err.reason, StopReason::Exhausted { .. }));
    assert!(err.partial_stats.peak_states >= 2);
}

#[test]
fn cancellation_still_wins_over_budgets() {
    let circuit = superposing_circuit(10, 50, 17);
    let input = StateSet::basis_state(circuit.num_qubits(), 0);
    let interrupt = Interrupt::new().with_max_states(1);
    interrupt.cancel();
    let err = Engine::hybrid()
        .apply_circuit_interruptible(&input, &circuit, &interrupt)
        .expect_err("a cancelled interrupt must stop the run");
    assert_eq!(err.reason, StopReason::Cancelled);
}

#[test]
fn interrupted_hunt_merges_stats_across_iterations() {
    let circuit = mc_toffoli(3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    // Identical circuits: the hunt would run all iterations; a sub-peak
    // budget interrupts it somewhere past the first.
    let full = BugHunter::default().hunt(&circuit, &circuit, &mut rng);
    let cap = (full.stats.peak_states.saturating_sub(1)).max(1) as u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    match BugHunter::default().hunt_interruptible(
        &circuit,
        &circuit,
        &mut rng,
        &Interrupt::new().with_max_states(cap),
    ) {
        Err(interrupted) => {
            assert!(matches!(interrupted.reason, StopReason::Exhausted { .. }));
            assert!(interrupted.partial_stats.gates_applied > 0);
        }
        // The budget can land exactly on the peak of the last iteration; a
        // completed hunt is then also sound.
        Ok(report) => assert!(!report.bug_found),
    }
}

#[test]
fn portfolio_with_expired_deadline_degrades_gracefully() {
    let original = mc_toffoli(3);
    let jobs: Vec<HuntJob> = (0..3)
        .map(|i| HuntJob {
            label: format!("mutant-{i}"),
            original: original.clone(),
            candidate: insert_gate(&original, Gate::X(4), 1 + i),
            seed: 0xDEAD + i as u64,
        })
        .collect();
    let exterior = Interrupt::new().with_deadline(Duration::ZERO);
    let started = Instant::now();
    let outcome = HuntPool::new(Engine::hybrid())
        .with_threads(2)
        .run_with_interrupt(&jobs, &exterior);
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "an expired deadline must stop the portfolio promptly"
    );
    assert!(matches!(
        outcome.stopped,
        Some(StopReason::Exhausted {
            resource: Resource::WallClock,
            ..
        })
    ));
    assert_eq!(outcome.hunts_completed, 0);
    assert_eq!(outcome.hunts_cancelled, jobs.len());
}

#[test]
fn portfolio_without_limits_reports_no_stop() {
    let original = mc_toffoli(3);
    let jobs: Vec<HuntJob> = (0..2)
        .map(|i| HuntJob {
            label: format!("mutant-{i}"),
            original: original.clone(),
            candidate: insert_gate(&original, Gate::X(4), 2 + i),
            seed: 0xBEEF + i as u64,
        })
        .collect();
    let outcome = HuntPool::new(Engine::hybrid()).with_threads(2).run(&jobs);
    assert!(outcome.win.is_some());
    assert!(
        outcome.stopped.is_none(),
        "a winner-cancelled portfolio is not an exhausted one"
    );
}
