//! `StateSet` behaviour at the old 64-qubit `u64` boundary and beyond:
//! `u128` basis patterns at 63/64/65 qubits, the paper's 70-qubit width, and
//! the `basis_pattern` argument validation (fixed bits must be in range and
//! disjoint from the free positions — previously silently ignored,
//! producing automata that disagreed with the caller's pattern).

use autoq_core::StateSet;
use autoq_treeaut::basis;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Singleton sets answer membership correctly at the boundary widths
    /// with full-width `u128` indices.
    #[test]
    fn contains_basis_state_across_the_boundary(
        raw in any::<u128>(),
        probe in any::<u128>(),
    ) {
        for n in [63u32, 64, 65, 70] {
            let index = raw & basis::index_mask(n);
            let probe = probe & basis::index_mask(n);
            let set = StateSet::basis_state(n, index);
            prop_assert_eq!(set.state_count(), 2 * n as usize + 1);
            prop_assert!(set.contains_basis_state(index));
            if probe != index {
                prop_assert!(!set.contains_basis_state(probe));
            }
        }
    }

    /// A pattern freeing two qubits of a wide register contains exactly the
    /// four completions of its fixed part and nothing else.
    #[test]
    fn basis_pattern_membership_at_65_qubits(raw in any::<u128>()) {
        let n = 65u32;
        // Free the MSB (qubit 0, bit 64 — past the u64 width) and qubit 40.
        let free = [0u32, 40];
        let free_mask = basis::qubit_bit(n, 0) | basis::qubit_bit(n, 40);
        let fixed = raw & basis::index_mask(n) & !free_mask;
        let set = StateSet::basis_pattern(n, fixed, &free);
        for completion in 0..4u128 {
            let member = fixed
                | if completion & 1 != 0 { basis::qubit_bit(n, 0) } else { 0 }
                | if completion & 2 != 0 { basis::qubit_bit(n, 40) } else { 0 };
            prop_assert!(set.contains_basis_state(member));
        }
        // Flipping any non-free bit leaves the set.
        let outside = fixed ^ basis::qubit_bit(n, 64);
        prop_assert!(!set.contains_basis_state(outside));
    }
}

#[test]
fn hunt_style_patterns_work_at_70_qubits() {
    // The shape the bug hunter builds: a fixed base with a growing free set.
    let n = 70u32;
    let base = (1u128 << 69) | (1 << 64) | 0b1010;
    let free = [5u32, 64];
    let free_mask = basis::qubit_bit(n, 5) | basis::qubit_bit(n, 64);
    let set = StateSet::basis_pattern(n, base & !free_mask, &free);
    assert_eq!(set.states(10).len(), 4);
    assert!(set.contains_basis_state(base & !free_mask));
    assert!(set.contains_basis_state((base & !free_mask) | free_mask));
}

#[test]
#[should_panic(expected = "outside the 64-qubit space")]
fn basis_pattern_rejects_out_of_range_fixed_bits() {
    let _ = StateSet::basis_pattern(64, 1u128 << 64, &[]);
}

#[test]
#[should_panic(expected = "overlap the free qubit positions")]
fn basis_pattern_rejects_fixed_bits_at_free_positions() {
    // Qubit 1 of 4 (bit 2, MSBF) is both fixed to 1 and freed — previously
    // the fixed bit was silently ignored.
    let _ = StateSet::basis_pattern(4, 0b0100, &[1]);
}

#[test]
#[should_panic(expected = "out of range")]
fn basis_pattern_rejects_free_positions_past_the_register() {
    let _ = StateSet::basis_pattern(4, 0, &[4]);
}

#[test]
#[should_panic(expected = "outside the 70-qubit space")]
fn basis_state_rejects_indices_past_70_qubits() {
    let _ = StateSet::basis_state(70, 1u128 << 70);
}
