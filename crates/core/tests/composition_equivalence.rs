//! Cross-validation of the fused composition pipeline against the retained
//! reference swap ladder:
//!
//! * on random automata (tagged and untagged, varying qubit depth), the
//!   fused [`project_with`] — indexed swap passes, ladder-wide interning,
//!   in-ladder reduction — accepts exactly the same (tagged) language as
//!   the unfused [`project_reference`] ladder;
//! * a reference recursive formula evaluator built from the same unfused
//!   pieces agrees with the fused/parallel [`evaluate_with`];
//! * tag structure survives in-ladder reduction: reducing a tagged
//!   automaton never merges states whose signatures disagree on tags, and
//!   never invents or drops tags.

use std::collections::HashSet;

use autoq_amplitude::Algebraic;
use autoq_circuit::Gate;
use autoq_core::composition::{
    self, binary_op, evaluate_with, multiply, project_reference, project_with, restrict, tag,
    CompositionOptions,
};
use autoq_core::formula::{update_formula, UpdateExpr};
use autoq_core::CompositionOptions as ReexportedOptions;
use autoq_treeaut::{equivalence, Tag, Tree, TreeAutomaton};
use proptest::prelude::*;

/// Builds a random small automaton: the basis states selected by `mask`
/// plus one superposition tree derived from `seed`, optionally tagged (the
/// shape every composition-encoded gate works on).
fn random_automaton(n: u32, mask: u64, seed: u32, tagged: bool) -> TreeAutomaton {
    let space = autoq_treeaut::basis::basis_count(n);
    let mut trees: Vec<Tree> = (0..space)
        .filter(|b| mask & (1 << b) != 0)
        .map(|b| Tree::basis_state(n, b))
        .collect();
    trees.push(Tree::from_fn(n, |b| {
        Algebraic::from_int(((seed as u128 + b) % 4) as i64)
    }));
    let automaton = TreeAutomaton::from_trees(n, &trees);
    if tagged {
        tag(&automaton)
    } else {
        automaton
    }
}

/// The fused options under test: growth factor 1 forces an in-ladder
/// reduction at every opportunity, so the property exercises reduction
/// interleaved with every swap pass, not just the pass mechanics.
fn aggressive_options() -> CompositionOptions {
    CompositionOptions {
        ladder_growth_factor: Some(1),
        eval_threads: 1,
    }
}

/// Reference recursive evaluator: the pre-fusion semantics, term by term,
/// with the unfused projection ladder and owned operands everywhere.
fn evaluate_reference(expr: &UpdateExpr, tagged_source: &TreeAutomaton) -> TreeAutomaton {
    match expr {
        UpdateExpr::Source => tagged_source.clone(),
        UpdateExpr::Proj { qubit, bit } => project_reference(tagged_source, *qubit, *bit),
        UpdateExpr::Restrict { qubit, bit, inner } => {
            restrict(&evaluate_reference(inner, tagged_source), *qubit, *bit)
        }
        UpdateExpr::Scale { factor, inner } => {
            multiply(&evaluate_reference(inner, tagged_source), *factor)
        }
        UpdateExpr::Combine { sign, lhs, rhs } => binary_op(
            &evaluate_reference(lhs, tagged_source),
            &evaluate_reference(rhs, tagged_source),
            *sign,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn fused_projection_matches_the_reference_ladder(
        n in 2u32..=4,
        mask in 0u64..256,
        seed in any::<u32>(),
        qubit_seed in any::<u32>(),
        bit_choice in 0u8..2,
        tagged_choice in 0u8..2,
    ) {
        let (bit, tagged) = (bit_choice == 1, tagged_choice == 1);
        let automaton = random_automaton(n, mask, seed, tagged);
        let qubit = qubit_seed % n;
        let fused = project_with(&automaton, qubit, bit, &aggressive_options());
        let reference = project_reference(&automaton, qubit, bit);
        // Tags are part of the symbols, so this compares the *tagged*
        // languages — exactly what the downstream binary operation matches
        // transitions on.
        prop_assert!(
            equivalence(&fused, &reference).holds(),
            "fused projection diverged (n = {}, qubit = {}, bit = {}, tagged = {})",
            n, qubit, bit, tagged
        );
    }

    #[test]
    fn fused_formula_evaluation_matches_the_reference_evaluator(
        n in 2u32..=3,
        mask in 0u64..64,
        seed in any::<u32>(),
        gate_seed in any::<u32>(),
        threads in 1usize..=4,
    ) {
        let tagged = random_automaton(n, mask, seed, true);
        let target = gate_seed % n;
        let gate = match gate_seed % 3 {
            0 => Gate::H(target),
            1 => Gate::RxPi2(target),
            _ => Gate::RyPi2(target),
        };
        let formula = update_formula(&gate).expect("superposing gates have formulae");
        let opts = CompositionOptions {
            eval_threads: threads,
            ..aggressive_options()
        };
        let fused = evaluate_with(&formula, &tagged, &opts);
        let reference = evaluate_reference(&formula, &tagged);
        prop_assert!(
            equivalence(&fused.untagged(), &reference.untagged()).holds(),
            "fused evaluation diverged ({gate:?}, {threads} thread(s))"
        );
    }

    #[test]
    fn in_ladder_reduction_preserves_tag_structure(
        n in 2u32..=4,
        mask in 0u64..256,
        seed in any::<u32>(),
    ) {
        // Reduce a tagged automaton with injected redundancy (the shape the
        // in-ladder reduction sees mid-swap): the tagged language must be
        // unchanged and no tag may appear that the input did not carry.
        let mut automaton = random_automaton(n, mask, seed, true);
        let copy = automaton.clone();
        let offset = automaton.import_disjoint(&copy);
        let copied_roots: Vec<_> = copy.roots.iter().map(|r| r.offset(offset)).collect();
        for root in copied_roots {
            automaton.add_root(root);
        }
        let reduced = automaton.reduce();
        prop_assert!(reduced.state_count() <= copy.state_count());
        prop_assert!(equivalence(&reduced, &copy).holds(), "tagged language changed");
        let original_tags: HashSet<Tag> =
            copy.internal.iter().map(|t| t.symbol.tag).collect();
        for transition in &reduced.internal {
            prop_assert!(
                original_tags.contains(&transition.symbol.tag),
                "reduction invented tag {:?}",
                transition.symbol.tag
            );
        }
    }
}

/// Pins the tag-preservation contract the fused ladder relies on: two
/// states that are identical *except for their tags* must never be merged
/// by the reduction (tags live in the symbols, so their signatures differ).
#[test]
fn reduction_never_merges_across_tags() {
    let mut automaton = TreeAutomaton::new(1);
    let zero = automaton.leaf_state(&Algebraic::zero());
    let one = automaton.leaf_state(&Algebraic::one());
    let a = automaton.add_state();
    let b = automaton.add_state();
    automaton.add_internal(
        a,
        autoq_treeaut::InternalSymbol::new(0).with_tag(Tag::Single(1)),
        zero,
        one,
    );
    automaton.add_internal(
        b,
        autoq_treeaut::InternalSymbol::new(0).with_tag(Tag::Single(2)),
        zero,
        one,
    );
    automaton.add_root(a);
    automaton.add_root(b);
    let reduced = automaton.reduce();
    // Both tagged transitions survive: the two trees differ only in tags,
    // and the binary operation downstream depends on that distinction.
    assert_eq!(reduced.internal.len(), 2);
    let tags: HashSet<Tag> = reduced.internal.iter().map(|t| t.symbol.tag).collect();
    assert!(tags.contains(&Tag::Single(1)) && tags.contains(&Tag::Single(2)));
}

/// The composition options are re-exported at the crate root (the engine's
/// public tuning surface) and default to in-ladder reduction at growth
/// factor 2 with the machine-derived thread budget.
#[test]
fn composition_options_default_and_reexport() {
    let options: ReexportedOptions = CompositionOptions::default();
    assert_eq!(options.ladder_growth_factor, Some(2));
    assert!(options.eval_threads >= 1);
    assert_eq!(options.eval_threads, composition::default_eval_threads());
}
