//! The 1000-hunt arena soak: a long portfolio campaign must not grow the
//! process-wide tree arena without bound, and releasing the campaign's epoch
//! must return `arena::live_node_count` **exactly** to its pre-campaign
//! baseline — the failure mode being guarded against is the old grow-only
//! `Mutex<Arena>`, where every extracted witness stayed interned forever.
//!
//! The campaign varies the hunt seed every round, so rounds extract
//! *distinct* witness trees (hash-consing alone would hide growth if every
//! round produced the identical witness).  Each round's [`HuntPool`] sweep
//! reclaims that round's scratch while keeping its winner; the final
//! [`arena::try_reclaim`] against the campaign-wide floor then releases the
//! accumulated winners too.
//!
//! This lives in its own integration-test binary **on purpose**: arena
//! reclamation is process-wide, and sharing a binary with concurrently
//! running tests would either sweep their fresh trees mid-use or let their
//! epoch pins block our reclaim.  Do not add unrelated tests here; see
//! `docs/CONCURRENCY.md` §"Reclamation protocol".
//!
//! Exact-arithmetic heavy — run in release, as CI does:
//! `cargo test --release -p autoq-core --test hunt_soak -- --include-ignored`

use autoq_circuit::generators::mc_toffoli;
use autoq_circuit::mutation::insert_gate;
use autoq_circuit::Gate;
use autoq_core::{Engine, HuntJob, HuntPool};
use autoq_treeaut::arena;

#[test]
#[ignore = "1000-hunt soak: run in release (--include-ignored)"]
fn thousand_hunt_soak_keeps_the_arena_flat() {
    let original = mc_toffoli(3);
    let make_jobs = |round: u64| -> Vec<HuntJob> {
        (0..4)
            .map(|i| HuntJob {
                label: format!("round-{round}-mutant-{i}"),
                original: original.clone(),
                candidate: insert_gate(&original, Gate::X(4), 1 + i),
                // Fresh seed every round: fresh input patterns, fresh
                // witnesses, fresh interned nodes.
                seed: round * 16 + i as u64,
            })
            .collect()
    };
    let pool = HuntPool::new(Engine::hybrid())
        .with_threads(4)
        .with_reclaim(true);

    // Campaign-wide epoch floor: everything interned after this point must
    // be reclaimable once the campaign's results are dropped.
    let floor = arena::generation();
    let baseline = arena::live_node_count();

    let mut hunts = 0usize;
    let mut kept_nodes = 0usize;
    let mut peak_live = baseline;
    for round in 0..250u64 {
        let outcome = pool.run(&make_jobs(round));
        hunts += outcome.hunts_completed + outcome.hunts_cancelled;
        let win = outcome.win.as_ref().expect("injected X gate is observable");
        assert!(win.report.bug_found, "round {round}");
        let reclaim = outcome
            .reclaim
            .expect("reclaim must not be blocked — this binary owns the arena");
        kept_nodes += reclaim.kept;
        peak_live = peak_live.max(arena::live_node_count());
        // Per-round growth is bounded by the kept winner witness (everything
        // else the round interned was swept on the spot).
        assert!(
            arena::live_node_count() <= baseline + kept_nodes,
            "round {round}: live nodes exceed baseline + kept witnesses"
        );
    }
    assert!(hunts >= 1000, "soak ran only {hunts} hunts");

    // Witnesses vary across rounds, so the campaign really did accumulate
    // kept nodes — the thing the final release must now give back.
    let live_before_release = arena::live_node_count();
    assert!(
        live_before_release > baseline,
        "seed-varied rounds must keep distinct witnesses"
    );

    // Drop every handle from the campaign and release its epoch: the arena
    // returns exactly to the pre-campaign baseline.  Any slack here is a
    // leak that compounds across real campaigns.
    let stats = arena::try_reclaim(floor, &[]).expect("no pins are active");
    assert!(stats.swept > 0, "the release must sweep the kept witnesses");
    assert_eq!(
        arena::live_node_count(),
        baseline,
        "arena did not return to baseline (peak {peak_live}, pre-release {live_before_release})"
    );
}
